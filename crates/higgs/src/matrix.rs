//! The HIGGS compressed matrix: a `d × d` grid of buckets, each holding up to
//! `b` fingerprinted entries, with the Multiple Mapping Buckets (MMB)
//! optimisation of Section IV-C.
//!
//! # Storage layout
//!
//! Bucket storage is a single contiguous slab of `b · d²` fixed-stride slots
//! (bucket `(row, col)` owns slots `[(row·d + col)·b, (row·d + col + 1)·b)`)
//! plus one `Vec<u8>` of per-bucket occupancy counts. The slab is stored
//! **structure-of-arrays**: three parallel columns — packed match keys
//! (`u64`), packed tags (`u64`), and weights (`i64`) — instead of one array
//! of structs. A probe compares keys and tags and accumulates weights; SoA
//! lets each of those streams load as dense, lane-aligned runs, which is
//! what the SIMD sweep kernels ([`higgs_common::simd`]) need.
//!
//! Per slot, the match key packs the fingerprint pair into one `u64`
//! (`fp_src` in the high half, `fp_dst` in the low half — exact, since
//! fingerprints are at most 32 bits each), and the tag packs the MMB index
//! pair into bits 32..48 with the time offset in the low 32 bits. A
//! candidate scan therefore compares one `u64` and one masked `u64` per
//! slot.
//!
//! # The empty-slots-are-zero invariant
//!
//! Never-occupied slots hold all-zero key, tag, and **weight**. Entries are
//! never physically removed (deletion only decrements weights), so every
//! slot outside a bucket's occupancy count is all-zero forever. An empty
//! slot can at worst match an all-zero pattern and then contributes zero
//! weight, so a *fixed-length* sweep over a whole `b`-slot bucket or a whole
//! `d · b`-slot row is bit-identical to an occupancy-bounded scan — sweep
//! granularity is purely a performance choice. Query paths pick per shape:
//! bucket-granular probes (edge, destination-column strides) bound each scan
//! by the occupancy count, while the source-row sweep asks
//! [`wide_kernel_active`] whether an explicit vector kernel will dispatch
//! and chooses one contiguous fixed-length row sweep (the kernel streams
//! only the keys column) or a fused occupancy-guided scan accordingly.
//! Mutating scans (insert, delete) still honour the counts semantically:
//! they must find *real* entries, not zero-weight ghosts.
//!
//! # Probing
//!
//! Every operation precomputes its `r` candidate rows and columns once with
//! an iterative LCG walk ([`AddressSequence::fill_sequence`]) into small
//! stack arrays; the `r × r` candidate loops then index those arrays.
//! Query paths accept a reusable `ProbeScratch` that memoises the last
//! `(side, base address)` candidate fill — the columnar batch evaluator
//! sweeps address-sorted probe sets where consecutive probes share
//! endpoints, so most fills are skipped entirely. Insertion fuses the
//! match-scan and the free-slot scan into a single sweep.
//!
//! Leaf matrices store a per-entry time offset relative to the matrix's start
//! time; aggregated (non-leaf) matrices store no temporal information
//! (Section IV-A). Every entry also records the index pair `(i, j)` of the
//! mapping-bucket it occupies so that queries and aggregation can attribute
//! it to the correct base address.

use higgs_common::hashing::AddressSequence;
use higgs_common::simd::{prefetch_read_data, sum_matching, wide_kernel_active, TAG_OFFSET_MASK};

/// Maximum number of MMB mapping addresses per vertex: index pairs are
/// stored as two 8-bit halves of a `u16` and candidate addresses live in
/// fixed stack arrays of this size. [`HiggsConfig`](crate::HiggsConfig)
/// validates the same bound.
pub const MAX_MAPPING: usize = 16;

/// One stored edge record: the fingerprint pair, the MMB index pair, the
/// time offset (leaf matrices only; 0 in aggregated matrices), and the
/// accumulated weight.
///
/// This is the public *view* of a slot; internally the slab is
/// structure-of-arrays with packed keys and tags (see the module docs), and
/// [`CompressedMatrix::entries`] materialises `Entry` values on the fly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Source fingerprint at this matrix's layer.
    pub fp_src: u32,
    /// Destination fingerprint at this matrix's layer.
    pub fp_dst: u32,
    /// Index of the source mapping address used (`i` of the index pair).
    pub idx_src: u8,
    /// Index of the destination mapping address used (`j` of the index pair).
    pub idx_dst: u8,
    /// Timestamp offset relative to the matrix's start time (leaf layer only).
    pub time_offset: u32,
    /// Accumulated weight (signed so deletions cannot wrap).
    pub weight: i64,
}

/// A query-time filter on entry time offsets (inclusive bounds). `None`
/// disables temporal filtering (non-leaf matrices).
pub type OffsetFilter = Option<(u32, u32)>;

/// One occupied slot of the slab, materialised from the three SoA columns:
/// the packed match key plus payload. Crate-visible so the snapshot codec
/// can persist the slab in the same on-disk shape as before the SoA split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Slot {
    /// `fp_src` in the high 32 bits, `fp_dst` in the low 32 bits.
    pub(crate) key: u64,
    /// `idx_src` in the high byte, `idx_dst` in the low byte.
    pub(crate) idx: u16,
    /// Timestamp offset relative to the matrix's start time (leaf layer only).
    pub(crate) time_offset: u32,
    /// Accumulated weight.
    pub(crate) weight: i64,
}

#[inline]
fn pack_key(fp_src: u32, fp_dst: u32) -> u64 {
    (u64::from(fp_src) << 32) | u64::from(fp_dst)
}

#[inline]
fn pack_idx(i: usize, j: usize) -> u16 {
    ((i as u16) << 8) | j as u16
}

/// Packs the MMB index pair and time offset into a tag word: index pair in
/// bits 32..48, offset in the low 32 bits (the layout
/// [`higgs_common::sum_matching`] range-checks offsets against).
#[inline]
fn pack_tag(idx: u16, time_offset: u32) -> u64 {
    (u64::from(idx) << 32) | u64::from(time_offset)
}

/// Tag bits holding the full index pair.
const TAG_IDX_MASK: u64 = 0xFFFF_0000_0000;
/// Tag bits holding the source half of the index pair.
const TAG_SRC_MASK: u64 = 0xFF00_0000_0000;
/// Tag bits holding the destination half of the index pair.
const TAG_DST_MASK: u64 = 0x00FF_0000_0000;
/// Key bits holding the source fingerprint.
const KEY_SRC_MASK: u64 = 0xFFFF_FFFF_0000_0000;
/// Key bits holding the destination fingerprint.
const KEY_DST_MASK: u64 = 0x0000_0000_FFFF_FFFF;

/// Inclusive offset bounds of a filter; `None` admits every offset.
#[inline]
fn filter_bounds(filter: OffsetFilter) -> (u32, u32) {
    filter.unwrap_or((0, u32::MAX))
}

/// A spilled aggregation entry: kept outside the bucket grid when every
/// candidate bucket of an aggregation insert is full. Spills are rare (the
/// parent has the same total capacity as its children) but must preserve
/// exact attribution so that aggregation never loses weight for any edge.
/// Crate-visible so the snapshot codec can persist spills verbatim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SpillEntry {
    pub(crate) addr_src: u64,
    pub(crate) addr_dst: u64,
    pub(crate) fp_src: u32,
    pub(crate) fp_dst: u32,
    pub(crate) weight: i64,
}

/// Memoised candidate-address fill for one probe endpoint: caches the last
/// `(side, mapping, base)` LCG sequence so that consecutive probes sharing
/// an endpoint skip the refill entirely.
#[derive(Clone, Copy, Debug)]
struct CachedSeq {
    side: u64,
    mapping: u32,
    base: u64,
    valid: bool,
    cands: [u64; MAX_MAPPING],
}

impl CachedSeq {
    const fn new() -> Self {
        Self {
            side: 0,
            mapping: 0,
            base: 0,
            valid: false,
            cands: [0; MAX_MAPPING],
        }
    }

    /// The first `mapping` candidate addresses for `base`, refilled only on
    /// a cache miss. The LCG constants are global, so a `(side, mapping,
    /// base mod side)` key identifies the sequence across matrices — one
    /// scratch serves a leaf matrix *and* its overflow blocks *and* every
    /// other same-side matrix in a sweep.
    // LINT-ALLOW(hot-path-panic): `mapping <= MAX_MAPPING` is asserted at
    // matrix construction, so `cands[..mapping]` is always in bounds.
    #[inline]
    fn candidates(&mut self, seq: &AddressSequence, side: u64, mapping: u32, base: u64) -> &[u64] {
        let base = base % side;
        if !(self.valid && self.side == side && self.mapping == mapping && self.base == base) {
            seq.fill_sequence(base, &mut self.cands[..mapping as usize]);
            self.side = side;
            self.mapping = mapping;
            self.base = base;
            self.valid = true;
        }
        &self.cands[..self.mapping as usize]
    }
}

/// Reusable candidate-address scratch for probe sweeps: one cached LCG fill
/// per endpoint role (row / column). The columnar batch evaluator allocates
/// one per group and threads it through every probe of every target, so the
/// per-probe `fill_sequence` of the row-wise path amortises away whenever
/// consecutive (address-sorted) probes share endpoints.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ProbeScratch {
    rows: CachedSeq,
    cols: CachedSeq,
}

impl ProbeScratch {
    pub(crate) const fn new() -> Self {
        Self {
            rows: CachedSeq::new(),
            cols: CachedSeq::new(),
        }
    }
}

impl Default for ProbeScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The HIGGS compressed matrix.
#[derive(Clone, Debug)]
pub struct CompressedMatrix {
    side: u64,
    layer: u32,
    bucket_entries: usize,
    mapping: u32,
    seq: AddressSequence,
    /// Packed fingerprint pairs, one per slot; bucket `(r, c)` owns
    /// `keys[(r·d + c)·b ..][..b]`, of which the first `lens[r·d + c]` are
    /// occupied. Parallel to `tags` and `weights`.
    keys: Vec<u64>,
    /// Packed index pair (bits 32..48) and time offset (low 32 bits).
    tags: Vec<u64>,
    /// Accumulated signed weights. Zero for every never-occupied slot — the
    /// invariant that lets query sweeps ignore occupancy counts.
    weights: Vec<i64>,
    /// Per-bucket occupancy, indexed by `r·d + c`.
    lens: Vec<u8>,
    spill: Vec<SpillEntry>,
    stored: usize,
}

impl CompressedMatrix {
    /// Creates an empty matrix of `side × side` buckets at tree layer
    /// `layer`, with `bucket_entries` entries per bucket and `mapping`
    /// candidate addresses per vertex.
    pub fn new(side: u64, layer: u32, bucket_entries: usize, mapping: u32) -> Self {
        assert!(side.is_power_of_two() && side >= 2);
        assert!(
            bucket_entries >= 1 && bucket_entries <= u8::MAX as usize,
            "bucket_entries must be in [1, 255]"
        );
        assert!(
            mapping >= 1 && mapping as usize <= MAX_MAPPING,
            "mapping must be in [1, {MAX_MAPPING}]"
        );
        let buckets = (side * side) as usize;
        let slots = buckets * bucket_entries;
        Self {
            side,
            layer,
            bucket_entries,
            mapping,
            seq: AddressSequence::new(side),
            keys: vec![0u64; slots],
            tags: vec![0u64; slots],
            weights: vec![0i64; slots],
            lens: vec![0u8; buckets],
            spill: Vec::new(),
            stored: 0,
        }
    }

    /// Matrix side length `d`.
    pub fn side(&self) -> u64 {
        self.side
    }

    /// Tree layer this matrix belongs to (1 = leaf layer).
    pub fn layer(&self) -> u32 {
        self.layer
    }

    /// Number of entries currently stored.
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// Maximum number of entries (`b · d²`).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Fraction of entry slots in use (the utilisation rate of Section V-A).
    pub fn utilization(&self) -> f64 {
        self.stored as f64 / self.capacity() as f64
    }

    /// Whether the matrix holds no entries.
    pub fn is_empty(&self) -> bool {
        self.stored == 0
    }

    /// Number of aggregation entries that spilled outside the bucket grid
    /// because every candidate bucket was full (diagnostic; always zero for
    /// leaf usage and zero whenever the parent capacity suffices).
    pub fn spill_len(&self) -> usize {
        self.spill.len()
    }

    /// Total stored weight (bucket entries plus spilled entries).
    pub fn total_weight(&self) -> i64 {
        // Occupied slots only would do, but the zero-empty-slot invariant
        // makes the full columns equivalent.
        self.weights.iter().sum::<i64>() + self.spill.iter().map(|e| e.weight).sum::<i64>()
    }

    /// The candidate rows/columns of `addr`: the first `mapping` LCG
    /// addresses, computed iteratively in one pass. Mutating scans use this
    /// direct fill; query paths go through [`ProbeScratch`] so repeated
    /// probes of the same endpoint skip it.
    // LINT-ALLOW(hot-path-panic): `mapping <= MAX_MAPPING` is asserted in
    // `new`, so `out[..mapping]` is always in bounds.
    #[inline]
    fn candidates(&self, addr: u64) -> [u64; MAX_MAPPING] {
        let mut out = [0u64; MAX_MAPPING];
        self.seq
            .fill_sequence(addr, &mut out[..self.mapping as usize]);
        out
    }

    /// Slab range of bucket `(row, col)`: `(bucket index, slot start)`.
    #[inline]
    fn bucket_slots(&self, row: u64, col: u64) -> (usize, usize) {
        let bucket = (row * self.side + col) as usize;
        (bucket, bucket * self.bucket_entries)
    }

    /// Materialises the slot view of position `p`.
    // LINT-ALLOW(hot-path-panic): callers derive `p` from a bucket's
    // occupied prefix (`start..start + lens[bucket]`), which lies inside the
    // eagerly allocated `b * d * d` slab.
    #[inline]
    fn slot_at(&self, p: usize) -> Slot {
        Slot {
            key: self.keys[p],
            idx: (self.tags[p] >> 32) as u16,
            time_offset: self.tags[p] as u32,
            weight: self.weights[p],
        }
    }

    /// Scatters a slot view into the three columns at position `p`.
    // LINT-ALLOW(hot-path-panic): callers derive `p` from a validated
    // bucket occupancy prefix inside the eagerly allocated slab.
    #[inline]
    fn write_slot(&mut self, p: usize, slot: Slot) {
        self.keys[p] = slot.key;
        self.tags[p] = pack_tag(slot.idx, slot.time_offset);
        self.weights[p] = slot.weight;
    }

    /// Tries to insert (or accumulate) an entry. Returns `false` if every
    /// candidate bucket is full and no matching entry exists — the signal
    /// that triggers leaf creation in Algorithm 1.
    ///
    /// `time_offset = Some(o)` (leaf matrices) requires matching entries to
    /// carry the same offset; `None` (aggregated matrices) matches on the
    /// fingerprint pair alone.
    ///
    /// Single fused pass over the `r × r` candidate buckets: while scanning
    /// for a matching entry (which may live in any candidate bucket because
    /// earlier ones were full when it first arrived), the first free slot is
    /// recorded; if the scan finds no match, the entry is placed there.
    // LINT-ALLOW(hot-path-panic): `m <= MAX_MAPPING` bounds the candidate
    // arrays; every slot position comes from `bucket_slots` of a
    // `seq`-generated `(row, col) < (side, side)` pair, offset by
    // `lens[bucket] <= bucket_entries`, all inside the slab.
    pub fn try_insert(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        time_offset: Option<u32>,
        weight: i64,
    ) -> bool {
        let offset = time_offset.unwrap_or(0);
        let key = pack_key(fp_src, fp_dst);
        // Aggregated matrices match on the index pair alone; leaves also
        // require the exact offset. Tags only use bits below 48, so `!0`
        // compares the offset half exactly.
        let tag_mask = if time_offset.is_none() {
            TAG_IDX_MASK
        } else {
            !0
        };
        let m = self.mapping as usize;
        let rows = self.candidates(addr_src);
        let cols = self.candidates(addr_dst);
        // (bucket index, free slot position, packed index pair) of the first
        // candidate bucket with spare capacity, in (i, j) scan order.
        let mut free: Option<(usize, usize, u16)> = None;
        for (i, &row) in rows[..m].iter().enumerate() {
            for (j, &col) in cols[..m].iter().enumerate() {
                let idx = pack_idx(i, j);
                let tag_pat = pack_tag(idx, offset) & tag_mask;
                let (bucket, start) = self.bucket_slots(row, col);
                let len = self.lens[bucket] as usize;
                for p in start..start + len {
                    if self.keys[p] == key && self.tags[p] & tag_mask == tag_pat {
                        self.weights[p] += weight;
                        return true;
                    }
                }
                if free.is_none() && len < self.bucket_entries {
                    free = Some((bucket, start + len, idx));
                }
            }
        }
        if let Some((bucket, pos, idx)) = free {
            self.keys[pos] = key;
            self.tags[pos] = pack_tag(idx, offset);
            self.weights[pos] = weight;
            self.lens[bucket] += 1;
            self.stored += 1;
            return true;
        }
        false
    }

    /// Inserts during aggregation: never fails. If every candidate bucket is
    /// full, the entry is kept in an exact spill list keyed by its base
    /// address and fingerprint pair, so aggregation never loses or misplaces
    /// weight (Algorithm 2's no-additional-error guarantee).
    pub fn insert_aggregated(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        weight: i64,
    ) {
        if self.try_insert(addr_src, addr_dst, fp_src, fp_dst, None, weight) {
            return;
        }
        let addr_src = addr_src % self.side;
        let addr_dst = addr_dst % self.side;
        if let Some(existing) = self.spill.iter_mut().find(|e| {
            e.addr_src == addr_src
                && e.addr_dst == addr_dst
                && e.fp_src == fp_src
                && e.fp_dst == fp_dst
        }) {
            existing.weight += weight;
        } else {
            self.spill.push(SpillEntry {
                addr_src,
                addr_dst,
                fp_src,
                fp_dst,
                weight,
            });
        }
    }

    /// Decrements a previously inserted edge. Matching entries are searched
    /// across all candidate buckets; if `filter` is given, only entries whose
    /// offset lies inside it are decremented. Returns `true` if any entry was
    /// found.
    // LINT-ALLOW(hot-path-panic): same slab invariants as `try_insert` —
    // candidate arrays bounded by `m <= MAX_MAPPING`, slot ranges bounded by
    // `lens[bucket] <= bucket_entries` within the slab.
    pub fn try_delete(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        filter: OffsetFilter,
        weight: i64,
    ) -> bool {
        let key = pack_key(fp_src, fp_dst);
        let m = self.mapping as usize;
        let rows = self.candidates(addr_src);
        let cols = self.candidates(addr_dst);
        for (i, &row) in rows[..m].iter().enumerate() {
            for (j, &col) in cols[..m].iter().enumerate() {
                let idx_pat = u64::from(pack_idx(i, j)) << 32;
                let (bucket, start) = self.bucket_slots(row, col);
                let len = self.lens[bucket] as usize;
                for p in start..start + len {
                    if self.keys[p] == key
                        && self.tags[p] & TAG_IDX_MASK == idx_pat
                        && offset_in(self.tags[p] as u32, filter)
                    {
                        self.weights[p] -= weight;
                        return true;
                    }
                }
            }
        }
        let (addr_src, addr_dst) = (addr_src % self.side, addr_dst % self.side);
        if let Some(entry) = self.spill.iter_mut().find(|e| {
            e.addr_src == addr_src
                && e.addr_dst == addr_dst
                && e.fp_src == fp_src
                && e.fp_dst == fp_dst
        }) {
            entry.weight -= weight;
            return true;
        }
        false
    }

    /// Edge query: sums entries matching the fingerprint pair (and offset
    /// filter) over all candidate buckets. Never underestimates.
    pub fn edge_weight(
        &self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        filter: OffsetFilter,
    ) -> u64 {
        let mut scratch = ProbeScratch::new();
        self.edge_weight_scratch(&mut scratch, addr_src, addr_dst, fp_src, fp_dst, filter)
    }

    /// [`edge_weight`](Self::edge_weight) with a caller-provided
    /// [`ProbeScratch`], so repeated probes (columnar batch sweeps) reuse
    /// cached candidate addresses.
    // LINT-ALLOW(hot-path-panic): `(row, col) < (side, side)` from the LCG
    // sequence and `lens[bucket] <= bucket_entries` keep every probed range
    // inside the slab.
    pub(crate) fn edge_weight_scratch(
        &self,
        scratch: &mut ProbeScratch,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        filter: OffsetFilter,
    ) -> u64 {
        let key = pack_key(fp_src, fp_dst);
        let (lo, hi) = filter_bounds(filter);
        let b = self.bucket_entries;
        let rows = scratch
            .rows
            .candidates(&self.seq, self.side, self.mapping, addr_src);
        let cols = scratch
            .cols
            .candidates(&self.seq, self.side, self.mapping, addr_dst);
        let mut total = 0i64;
        for (i, &row) in rows.iter().enumerate() {
            for (j, &col) in cols.iter().enumerate() {
                // Bucket-granular probe: bound the scan by the occupied
                // prefix. Slots past `lens` were never written, so this is
                // exactly the full fixed-length sweep minus guaranteed-zero
                // contributions — identical sums, a third of the loads.
                let bucket = (row * self.side + col) as usize;
                let start = bucket * b;
                let len = self.lens[bucket] as usize;
                total = total.wrapping_add(sum_matching(
                    &self.keys[start..start + len],
                    &self.tags[start..start + len],
                    &self.weights[start..start + len],
                    !0,
                    key,
                    TAG_IDX_MASK,
                    u64::from(pack_idx(i, j)) << 32,
                    lo,
                    hi,
                ));
            }
        }
        let (addr_src, addr_dst) = (addr_src % self.side, addr_dst % self.side);
        total += self
            .spill
            .iter()
            .filter(|e| {
                e.addr_src == addr_src
                    && e.addr_dst == addr_dst
                    && e.fp_src == fp_src
                    && e.fp_dst == fp_dst
            })
            .map(|e| e.weight)
            .sum::<i64>();
        total.max(0) as u64
    }

    /// Source-vertex query: sums entries in the candidate rows whose source
    /// fingerprint (and row index) match (Eq. (2) of the paper, extended to
    /// MMB rows). When a vector kernel is active each candidate row is one
    /// contiguous `d · b`-slot [`sum_matching`] sweep of the slab with no
    /// per-bucket occupancy lookups; otherwise a fused occupancy-guided scan
    /// covers the row (identical sums, fewer loads).
    pub fn src_weight(&self, addr_src: u64, fp_src: u32, filter: OffsetFilter) -> u64 {
        let mut scratch = ProbeScratch::new();
        self.src_weight_scratch(&mut scratch, addr_src, fp_src, filter)
    }

    /// [`src_weight`](Self::src_weight) with a caller-provided
    /// [`ProbeScratch`].
    // LINT-ALLOW(hot-path-panic): `row < side` from the LCG sequence bounds
    // the row slices (`row * d * b + d * b <= slab len`); the inner
    // occupancy scan stays below each bucket's `len <= bucket_entries`.
    pub(crate) fn src_weight_scratch(
        &self,
        scratch: &mut ProbeScratch,
        addr_src: u64,
        fp_src: u32,
        filter: OffsetFilter,
    ) -> u64 {
        let (lo, hi) = filter_bounds(filter);
        let rows = scratch
            .rows
            .candidates(&self.seq, self.side, self.mapping, addr_src);
        let b = self.bucket_entries;
        let row_slots = self.side as usize * b;
        let key_pat = u64::from(fp_src) << 32;
        let mut total = 0i64;
        for (i, &row) in rows.iter().enumerate() {
            let tag_pat = (i as u64) << 40;
            let start = row as usize * row_slots;
            if wide_kernel_active() {
                // One contiguous `d · b`-slot sweep: the vector kernel
                // streams only the keys column, so the wide fixed-length
                // shape wins despite scanning never-occupied slots.
                let end = start + row_slots;
                total = total.wrapping_add(sum_matching(
                    &self.keys[start..end],
                    &self.tags[start..end],
                    &self.weights[start..end],
                    KEY_SRC_MASK,
                    key_pat,
                    TAG_SRC_MASK,
                    tag_pat,
                    lo,
                    hi,
                ));
            } else {
                // Scalar dispatch: a fused occupancy-guided scan reads only
                // occupied prefixes — fewer loads than the wide sweep when
                // no vector kernel is there to amortise them. Identical sums
                // either way: skipped slots contribute exactly zero, and the
                // per-slot predicate below is exactly [`sum_matching`]'s,
                // applied in the same ascending slot order.
                let keys = &self.keys[start..start + row_slots];
                let tags = &self.tags[start..start + row_slots];
                let weights = &self.weights[start..start + row_slots];
                let first_bucket = (row * self.side) as usize;
                let lens = &self.lens[first_bucket..first_bucket + self.side as usize];
                let mut s = 0usize;
                for &len in lens {
                    for p in s..s + len as usize {
                        if keys[p] & KEY_SRC_MASK == key_pat {
                            let t = tags[p];
                            let tag_eq = (t & TAG_SRC_MASK) == tag_pat;
                            let off = t & TAG_OFFSET_MASK;
                            let off_in = (off >= u64::from(lo)) & (off <= u64::from(hi));
                            let lane = ((tag_eq & off_in) as i64).wrapping_neg();
                            total = total.wrapping_add(weights[p] & lane);
                        }
                    }
                    s += b;
                }
            }
        }
        let addr_src = addr_src % self.side;
        total += self
            .spill
            .iter()
            .filter(|e| e.addr_src == addr_src && e.fp_src == fp_src)
            .map(|e| e.weight)
            .sum::<i64>();
        total.max(0) as u64
    }

    /// Destination-vertex query: sums entries in the candidate columns whose
    /// destination fingerprint (and column index) match. The column sweep is
    /// strided (one `b`-slot bucket per row), so each bucket is a short
    /// fixed-length scan with the next stride software-prefetched.
    pub fn dst_weight(&self, addr_dst: u64, fp_dst: u32, filter: OffsetFilter) -> u64 {
        let mut scratch = ProbeScratch::new();
        self.dst_weight_scratch(&mut scratch, addr_dst, fp_dst, filter)
    }

    /// [`dst_weight`](Self::dst_weight) with a caller-provided
    /// [`ProbeScratch`].
    // LINT-ALLOW(hot-path-panic): the strided walk starts at `col < side`
    // and takes `side` steps of `side * b` slots, so every bucket range
    // (bounded by `lens[bucket] <= b`) stays inside the slab;
    // `prefetch_read_data` bounds-checks its own hint index internally.
    pub(crate) fn dst_weight_scratch(
        &self,
        scratch: &mut ProbeScratch,
        addr_dst: u64,
        fp_dst: u32,
        filter: OffsetFilter,
    ) -> u64 {
        let (lo, hi) = filter_bounds(filter);
        let b = self.bucket_entries;
        let stride = self.side as usize * b;
        let cols = scratch
            .cols
            .candidates(&self.seq, self.side, self.mapping, addr_dst);
        let mut total = 0i64;
        for (j, &col) in cols.iter().enumerate() {
            let tag_pat = (j as u64) << 32;
            let mut bucket = col as usize;
            let mut start = col as usize * b;
            for _row in 0..self.side {
                // Hide the strided-miss latency of the next few buckets.
                prefetch_read_data(&self.keys, start + 4 * stride);
                // Occupied-prefix bound: identical sums (never-written slots
                // are all-zero), a third of the loads per bucket.
                let len = self.lens[bucket] as usize;
                total = total.wrapping_add(sum_matching(
                    &self.keys[start..start + len],
                    &self.tags[start..start + len],
                    &self.weights[start..start + len],
                    KEY_DST_MASK,
                    u64::from(fp_dst),
                    TAG_DST_MASK,
                    tag_pat,
                    lo,
                    hi,
                ));
                bucket += self.side as usize;
                start += stride;
            }
        }
        let addr_dst = addr_dst % self.side;
        total += self
            .spill
            .iter()
            .filter(|e| e.addr_dst == addr_dst && e.fp_dst == fp_dst)
            .map(|e| e.weight)
            .sum::<i64>();
        total.max(0) as u64
    }

    /// Software-prefetches the first candidate bucket an edge probe for
    /// `(addr_src, addr_dst)` will touch (the LCG sequence starts at the
    /// base address itself). Used by the columnar batch evaluator to issue
    /// probes a few positions ahead of the sweep.
    #[inline]
    pub(crate) fn prefetch_edge_probe(&self, addr_src: u64, addr_dst: u64) {
        let row = addr_src % self.side;
        let col = addr_dst % self.side;
        let start = (row * self.side + col) as usize * self.bucket_entries;
        prefetch_read_data(&self.keys, start);
        prefetch_read_data(&self.weights, start);
    }

    /// Software-prefetches the start of the first candidate row a
    /// source-vertex probe for `addr_src` will sweep.
    #[inline]
    pub(crate) fn prefetch_row_probe(&self, addr_src: u64) {
        let row = addr_src % self.side;
        let start = (row * self.side) as usize * self.bucket_entries;
        prefetch_read_data(&self.keys, start);
        prefetch_read_data(&self.weights, start);
    }

    /// Software-prefetches the first bucket of the first candidate column a
    /// destination-vertex probe for `addr_dst` will sweep.
    #[inline]
    pub(crate) fn prefetch_col_probe(&self, addr_dst: u64) {
        let col = addr_dst % self.side;
        let start = col as usize * self.bucket_entries;
        prefetch_read_data(&self.keys, start);
        prefetch_read_data(&self.weights, start);
    }

    /// Iterates over occupied slots together with their bucket index.
    fn occupied_slots(&self) -> impl Iterator<Item = (usize, Slot)> + '_ {
        self.lens
            .iter()
            .enumerate()
            .flat_map(move |(bucket, &len)| {
                let start = bucket * self.bucket_entries;
                (start..start + len as usize).map(move |p| (bucket, self.slot_at(p)))
            })
    }

    /// Iterates over all stored entries together with the row/column of the
    /// bucket holding them (used by aggregation).
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64, Entry)> + '_ {
        self.occupied_slots().map(move |(bucket, slot)| {
            let row = bucket as u64 / self.side;
            let col = bucket as u64 % self.side;
            let entry = Entry {
                fp_src: (slot.key >> 32) as u32,
                fp_dst: slot.key as u32,
                idx_src: (slot.idx >> 8) as u8,
                idx_dst: slot.idx as u8,
                time_offset: slot.time_offset,
                weight: slot.weight,
            };
            (row, col, entry)
        })
    }

    /// The LCG address sequence used by this matrix (needed to map stored
    /// bucket positions back to base addresses during aggregation).
    pub fn address_sequence(&self) -> AddressSequence {
        self.seq
    }

    /// Memory footprint in bytes. The slab is allocated eagerly, so this is
    /// independent of fill level (unlike the seed's per-bucket `Vec`s).
    pub fn space_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + self.tags.capacity() * std::mem::size_of::<u64>()
            + self.weights.capacity() * std::mem::size_of::<i64>()
            + self.lens.capacity()
            + self.spill.capacity() * std::mem::size_of::<SpillEntry>()
            + std::mem::size_of::<Self>()
    }

    // --- snapshot support (crate-internal) --------------------------------
    //
    // The snapshot codec (`crate::snapshot`) persists the slab in its
    // pre-SoA on-disk shape: the per-bucket occupancy array plus only the
    // occupied slots as materialised `Slot` records (empty slots are always
    // all-zero, so they carry no information), and the spill list. The
    // format is unchanged by the SoA split; slots are gathered on encode and
    // scattered on restore.

    /// Number of MMB mapping addresses per vertex (`r`).
    pub(crate) fn mapping(&self) -> u32 {
        self.mapping
    }

    /// Number of entry slots per bucket (`b`).
    pub(crate) fn bucket_entries(&self) -> usize {
        self.bucket_entries
    }

    /// The per-bucket occupancy array, indexed by `row · d + col`.
    pub(crate) fn raw_lens(&self) -> &[u8] {
        &self.lens
    }

    /// The occupied slots of bucket `bucket`, in slab order, materialised
    /// from the SoA columns.
    // LINT-ALLOW(hot-path-panic): the snapshot codec enumerates `bucket`
    // from `raw_lens()`, so `lens[bucket]` exists and the occupied prefix
    // lies inside the slab.
    pub(crate) fn bucket_occupied_slots(&self, bucket: usize) -> impl Iterator<Item = Slot> + '_ {
        let start = bucket * self.bucket_entries;
        (start..start + self.lens[bucket] as usize).map(move |p| self.slot_at(p))
    }

    /// The spill list, in insertion order.
    pub(crate) fn spill_entries(&self) -> &[SpillEntry] {
        &self.spill
    }

    /// Rebuilds the slab from persisted state: per-bucket occupancy plus the
    /// occupied slots in slab order (`occupied.len()` must equal the sum of
    /// `lens`), and the spill list. The geometry (`self`) must have been
    /// constructed with [`CompressedMatrix::new`] using the persisted
    /// parameters; occupancy counts exceeding `bucket_entries` or a slot
    /// count mismatch are rejected so a corrupt snapshot can never build a
    /// structurally inconsistent matrix.
    // LINT-ALLOW(hot-path-panic): the validation above guarantees
    // `sum(lens) == occupied.len()`, so each bucket's
    // `occupied[next..next + len]` window is in range.
    pub(crate) fn restore_slab(
        &mut self,
        lens: Vec<u8>,
        occupied: Vec<Slot>,
        spill: Vec<SpillEntry>,
    ) -> Result<(), String> {
        if lens.len() != self.lens.len() {
            return Err(format!(
                "bucket count mismatch: expected {}, got {}",
                self.lens.len(),
                lens.len()
            ));
        }
        if let Some(bad) = lens.iter().find(|&&l| l as usize > self.bucket_entries) {
            return Err(format!(
                "bucket occupancy {bad} exceeds bucket_entries {}",
                self.bucket_entries
            ));
        }
        let total: usize = lens.iter().map(|&l| l as usize).sum();
        if total != occupied.len() {
            return Err(format!(
                "occupied slot count mismatch: lens sum to {total}, got {} slots",
                occupied.len()
            ));
        }
        self.keys.fill(0);
        self.tags.fill(0);
        self.weights.fill(0);
        let mut next = 0usize;
        for (bucket, &len) in lens.iter().enumerate() {
            let start = bucket * self.bucket_entries;
            for (k, &slot) in occupied[next..next + len as usize].iter().enumerate() {
                self.write_slot(start + k, slot);
            }
            next += len as usize;
        }
        self.lens = lens;
        self.spill = spill;
        self.stored = total;
        Ok(())
    }
}

#[inline]
fn offset_in(offset: u32, filter: OffsetFilter) -> bool {
    match filter {
        None => true,
        Some((lo, hi)) => offset >= lo && offset <= hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CompressedMatrix {
        CompressedMatrix::new(8, 1, 3, 4)
    }

    #[test]
    fn insert_and_edge_query() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 7));
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 7);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((0, 10))), 7);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((6, 10))), 0);
    }

    #[test]
    fn same_edge_same_offset_accumulates() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 3));
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 4));
        assert_eq!(m.stored(), 1);
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 7);
    }

    #[test]
    fn same_edge_different_offset_uses_two_entries() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 3));
        assert!(m.try_insert(1, 2, 100, 200, Some(9), 4));
        assert_eq!(m.stored(), 2);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((0, 6))), 3);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((6, 9))), 4);
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 7);
    }

    #[test]
    fn aggregated_mode_ignores_offsets() {
        let mut m = CompressedMatrix::new(8, 2, 3, 4);
        assert!(m.try_insert(1, 2, 10, 20, None, 3));
        assert!(m.try_insert(1, 2, 10, 20, None, 4));
        assert_eq!(m.stored(), 1);
        assert_eq!(m.edge_weight(1, 2, 10, 20, None), 7);
    }

    #[test]
    fn distinct_fingerprints_do_not_mix() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(0), 5));
        assert!(m.try_insert(1, 2, 101, 200, Some(0), 9));
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 5);
        assert_eq!(m.edge_weight(1, 2, 101, 200, None), 9);
    }

    #[test]
    fn insertion_fails_when_all_candidates_full() {
        // 2×2 matrix, 1 entry per bucket, 1 mapping address: capacity 4 but a
        // single (addr, addr) pair only ever sees one bucket.
        let mut m = CompressedMatrix::new(2, 1, 1, 1);
        assert!(m.try_insert(0, 0, 1, 1, Some(0), 1));
        assert!(!m.try_insert(0, 0, 2, 2, Some(0), 1), "bucket is full");
    }

    #[test]
    fn mmb_increases_effective_capacity() {
        let mut without = CompressedMatrix::new(4, 1, 1, 1);
        let mut with = CompressedMatrix::new(4, 1, 1, 4);
        let mut placed_without = 0;
        let mut placed_with = 0;
        for k in 0..64u32 {
            // All edges share the same base address pair: the worst case MMB
            // is designed for.
            if without.try_insert(1, 1, k, k, Some(0), 1) {
                placed_without += 1;
            }
            if with.try_insert(1, 1, k, k, Some(0), 1) {
                placed_with += 1;
            }
        }
        assert!(placed_with > placed_without);
    }

    #[test]
    fn vertex_queries_sum_rows_and_columns() {
        let mut m = matrix();
        m.try_insert(3, 1, 10, 21, Some(0), 2);
        m.try_insert(3, 2, 10, 22, Some(0), 3);
        m.try_insert(4, 1, 11, 21, Some(0), 5);
        assert_eq!(m.src_weight(3, 10, None), 5);
        assert_eq!(m.dst_weight(1, 21, None), 7);
        assert_eq!(m.src_weight(4, 11, None), 5);
    }

    #[test]
    fn vertex_query_respects_offset_filter() {
        let mut m = matrix();
        m.try_insert(3, 1, 10, 21, Some(2), 2);
        m.try_insert(3, 2, 10, 22, Some(8), 3);
        assert_eq!(m.src_weight(3, 10, Some((0, 4))), 2);
        assert_eq!(m.src_weight(3, 10, Some((5, 9))), 3);
    }

    #[test]
    fn delete_decrements_weight() {
        let mut m = matrix();
        m.try_insert(1, 2, 100, 200, Some(5), 7);
        assert!(m.try_delete(1, 2, 100, 200, Some((5, 5)), 3));
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 4);
        assert!(!m.try_delete(1, 2, 100, 200, Some((9, 9)), 1));
    }

    #[test]
    fn insert_aggregated_never_fails_or_loses_attribution() {
        let mut m = CompressedMatrix::new(2, 2, 1, 1);
        for k in 0..20u32 {
            m.insert_aggregated(0, 0, k, k, 1);
        }
        assert!(m.spill_len() > 0, "tiny aggregate must spill");
        assert_eq!(m.total_weight(), 20);
        // Every spilled edge remains individually queryable: no weight is
        // credited to the wrong fingerprint.
        for k in 0..20u32 {
            assert_eq!(m.edge_weight(0, 0, k, k, None), 1);
        }
        // Vertex queries see spilled entries too.
        assert_eq!(m.src_weight(0, 5, None), 1);
        assert_eq!(m.dst_weight(0, 7, None), 1);
        // Deleting a spilled entry works.
        assert!(m.try_delete(0, 0, 9, 9, None, 1));
        assert_eq!(m.edge_weight(0, 0, 9, 9, None), 0);
    }

    #[test]
    fn entries_iterator_reports_positions() {
        let mut m = matrix();
        m.try_insert(1, 2, 100, 200, Some(0), 7);
        let collected: Vec<_> = m.entries().collect();
        assert_eq!(collected.len(), 1);
        let (row, col, e) = collected[0];
        assert!(row < 8 && col < 8);
        assert_eq!(e.weight, 7);
    }

    #[test]
    fn utilization_and_space() {
        let mut m = matrix();
        assert_eq!(m.utilization(), 0.0);
        m.try_insert(1, 2, 1, 2, Some(0), 1);
        assert!(m.utilization() > 0.0);
        assert!(m.space_bytes() > 0);
        assert_eq!(m.capacity(), 3 * 64);
        assert_eq!(m.side(), 8);
        assert_eq!(m.layer(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn packed_key_preserves_full_fingerprint_width() {
        // Fingerprints that agree on their low bits but differ in the top
        // bits must stay distinct: the packed key keeps all 32 bits of each
        // fingerprint.
        let mut m = matrix();
        let (lo, hi) = (0x0000_1234u32, 0xFFF0_1234u32);
        assert!(m.try_insert(1, 2, lo, lo, Some(0), 3));
        assert!(m.try_insert(1, 2, hi, lo, Some(0), 5));
        assert!(m.try_insert(1, 2, lo, hi, Some(0), 7));
        assert_eq!(m.edge_weight(1, 2, lo, lo, None), 3);
        assert_eq!(m.edge_weight(1, 2, hi, lo, None), 5);
        assert_eq!(m.edge_weight(1, 2, lo, hi, None), 7);
        assert_eq!(m.stored(), 3);
    }

    #[test]
    fn entries_round_trip_packed_fields() {
        let mut m = matrix();
        m.try_insert(5, 6, 0xDEAD_BEEF, 0xCAFE_F00D, Some(42), 11);
        let (_, _, e) = m.entries().next().expect("one entry");
        assert_eq!(e.fp_src, 0xDEAD_BEEF);
        assert_eq!(e.fp_dst, 0xCAFE_F00D);
        assert_eq!(e.time_offset, 42);
        assert_eq!(e.weight, 11);
        assert!(u32::from(e.idx_src) < 4 && u32::from(e.idx_dst) < 4);
    }

    #[test]
    fn slab_layout_is_fixed_stride() {
        // Filling one bucket to capacity must not affect neighbours: the
        // slab gives every bucket exactly `b` slots.
        let mut m = CompressedMatrix::new(4, 1, 2, 1);
        // Same address pair → same single candidate bucket (mapping = 1).
        assert!(m.try_insert(1, 1, 1, 1, Some(0), 1));
        assert!(m.try_insert(1, 1, 2, 2, Some(0), 1));
        assert!(!m.try_insert(1, 1, 3, 3, Some(0), 1), "bucket full");
        // A different address pair still inserts fine.
        assert!(m.try_insert(2, 2, 4, 4, Some(0), 1));
        assert_eq!(m.stored(), 3);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // One scratch threaded through many probes (the columnar pattern)
        // must answer identically to a fresh candidate fill per probe.
        let mut m = matrix();
        for k in 0..200u32 {
            m.try_insert(
                u64::from(k % 8),
                u64::from((k * 3) % 8),
                k,
                k.wrapping_mul(7),
                Some(k % 50),
                1 + i64::from(k % 5),
            );
        }
        let mut scratch = ProbeScratch::new();
        for k in 0..200u32 {
            let (a_s, a_d) = (u64::from(k % 8), u64::from((k * 3) % 8));
            let (f_s, f_d) = (k, k.wrapping_mul(7));
            assert_eq!(
                m.edge_weight_scratch(&mut scratch, a_s, a_d, f_s, f_d, Some((0, 30))),
                m.edge_weight(a_s, a_d, f_s, f_d, Some((0, 30))),
            );
            assert_eq!(
                m.src_weight_scratch(&mut scratch, a_s, f_s, None),
                m.src_weight(a_s, f_s, None),
            );
            assert_eq!(
                m.dst_weight_scratch(&mut scratch, a_d, f_d, None),
                m.dst_weight(a_d, f_d, None),
            );
        }
    }

    #[test]
    fn negative_net_weight_entries_still_clamp_at_zero() {
        // Over-deletion drives a slot's weight negative; queries clamp the
        // *total* at zero exactly as the row-wise reference did.
        let mut m = matrix();
        m.try_insert(1, 2, 100, 200, Some(5), 3);
        assert!(m.try_delete(1, 2, 100, 200, None, 10));
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 0);
        assert_eq!(m.src_weight(1, 100, None), 0);
        assert_eq!(m.dst_weight(2, 200, None), 0);
    }

    #[test]
    fn prefetch_helpers_are_callable_at_any_address() {
        // Prefetch is a hint: helpers must be safe for any address value,
        // in-range or not (they reduce modulo the side).
        let m = matrix();
        m.prefetch_edge_probe(0, 0);
        m.prefetch_edge_probe(u64::MAX, u64::MAX);
        m.prefetch_row_probe(7);
        m.prefetch_col_probe(u64::MAX - 1);
    }

    #[test]
    #[should_panic(expected = "mapping must be in")]
    fn mapping_above_max_rejected() {
        let _ = CompressedMatrix::new(8, 1, 3, MAX_MAPPING as u32 + 1);
    }

    #[test]
    #[should_panic(expected = "bucket_entries must be in")]
    fn oversized_bucket_rejected() {
        let _ = CompressedMatrix::new(8, 1, 256, 4);
    }
}
