//! The HIGGS compressed matrix: a `d × d` grid of buckets, each holding up to
//! `b` fingerprinted entries, with the Multiple Mapping Buckets (MMB)
//! optimisation of Section IV-C.
//!
//! Leaf matrices store a per-entry time offset relative to the matrix's start
//! time; aggregated (non-leaf) matrices store no temporal information
//! (Section IV-A). Every entry also records the index pair `(i, j)` of the
//! mapping-bucket it occupies so that queries and aggregation can attribute
//! it to the correct base address.

use higgs_common::hashing::AddressSequence;

/// One stored edge record: the fingerprint pair, the MMB index pair, the
/// time offset (leaf matrices only; 0 in aggregated matrices), and the
/// accumulated weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Source fingerprint at this matrix's layer.
    pub fp_src: u32,
    /// Destination fingerprint at this matrix's layer.
    pub fp_dst: u32,
    /// Index of the source mapping address used (`i` of the index pair).
    pub idx_src: u8,
    /// Index of the destination mapping address used (`j` of the index pair).
    pub idx_dst: u8,
    /// Timestamp offset relative to the matrix's start time (leaf layer only).
    pub time_offset: u32,
    /// Accumulated weight (signed so deletions cannot wrap).
    pub weight: i64,
}

/// A query-time filter on entry time offsets (inclusive bounds). `None`
/// disables temporal filtering (non-leaf matrices).
pub type OffsetFilter = Option<(u32, u32)>;

/// A spilled aggregation entry: kept outside the bucket grid when every
/// candidate bucket of an aggregation insert is full. Spills are rare (the
/// parent has the same total capacity as its children) but must preserve
/// exact attribution so that aggregation never loses weight for any edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SpillEntry {
    addr_src: u64,
    addr_dst: u64,
    fp_src: u32,
    fp_dst: u32,
    weight: i64,
}

/// The HIGGS compressed matrix.
#[derive(Clone, Debug)]
pub struct CompressedMatrix {
    side: u64,
    layer: u32,
    bucket_entries: usize,
    mapping: u32,
    seq: AddressSequence,
    buckets: Vec<Vec<Entry>>,
    spill: Vec<SpillEntry>,
    stored: usize,
}

impl CompressedMatrix {
    /// Creates an empty matrix of `side × side` buckets at tree layer
    /// `layer`, with `bucket_entries` entries per bucket and `mapping`
    /// candidate addresses per vertex.
    pub fn new(side: u64, layer: u32, bucket_entries: usize, mapping: u32) -> Self {
        assert!(side.is_power_of_two() && side >= 2);
        assert!(bucket_entries >= 1);
        assert!(mapping >= 1);
        Self {
            side,
            layer,
            bucket_entries,
            mapping,
            seq: AddressSequence::new(side),
            buckets: vec![Vec::new(); (side * side) as usize],
            spill: Vec::new(),
            stored: 0,
        }
    }

    /// Matrix side length `d`.
    pub fn side(&self) -> u64 {
        self.side
    }

    /// Tree layer this matrix belongs to (1 = leaf layer).
    pub fn layer(&self) -> u32 {
        self.layer
    }

    /// Number of entries currently stored.
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// Maximum number of entries (`b · d²`).
    pub fn capacity(&self) -> usize {
        self.bucket_entries * (self.side * self.side) as usize
    }

    /// Fraction of entry slots in use (the utilisation rate of Section V-A).
    pub fn utilization(&self) -> f64 {
        self.stored as f64 / self.capacity() as f64
    }

    /// Whether the matrix holds no entries.
    pub fn is_empty(&self) -> bool {
        self.stored == 0
    }

    /// Number of aggregation entries that spilled outside the bucket grid
    /// because every candidate bucket was full (diagnostic; always zero for
    /// leaf usage and zero whenever the parent capacity suffices).
    pub fn spill_len(&self) -> usize {
        self.spill.len()
    }

    /// Total stored weight (bucket entries plus spilled entries).
    pub fn total_weight(&self) -> i64 {
        self.buckets
            .iter()
            .flat_map(|b| b.iter())
            .map(|e| e.weight)
            .sum::<i64>()
            + self.spill.iter().map(|e| e.weight).sum::<i64>()
    }

    #[inline]
    fn bucket_index(&self, row: u64, col: u64) -> usize {
        (row * self.side + col) as usize
    }

    /// Tries to insert (or accumulate) an entry. Returns `false` if every
    /// candidate bucket is full and no matching entry exists — the signal
    /// that triggers leaf creation in Algorithm 1.
    ///
    /// `time_offset = Some(o)` (leaf matrices) requires matching entries to
    /// carry the same offset; `None` (aggregated matrices) matches on the
    /// fingerprint pair alone.
    pub fn try_insert(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        time_offset: Option<u32>,
        weight: i64,
    ) -> bool {
        let offset = time_offset.unwrap_or(0);
        // First pass: look for a matching entry among all candidate buckets
        // (an identical edge may already live in a later candidate because
        // earlier ones were full when it first arrived).
        for i in 0..self.mapping {
            let row = self.seq.address(addr_src % self.side, i);
            for j in 0..self.mapping {
                let col = self.seq.address(addr_dst % self.side, j);
                let idx = self.bucket_index(row, col);
                for entry in &mut self.buckets[idx] {
                    if entry.fp_src == fp_src
                        && entry.fp_dst == fp_dst
                        && entry.idx_src == i as u8
                        && entry.idx_dst == j as u8
                        && (time_offset.is_none() || entry.time_offset == offset)
                    {
                        entry.weight += weight;
                        return true;
                    }
                }
            }
        }
        // Second pass: first candidate bucket with a free slot.
        for i in 0..self.mapping {
            let row = self.seq.address(addr_src % self.side, i);
            for j in 0..self.mapping {
                let col = self.seq.address(addr_dst % self.side, j);
                let idx = self.bucket_index(row, col);
                if self.buckets[idx].len() < self.bucket_entries {
                    self.buckets[idx].push(Entry {
                        fp_src,
                        fp_dst,
                        idx_src: i as u8,
                        idx_dst: j as u8,
                        time_offset: offset,
                        weight,
                    });
                    self.stored += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Inserts during aggregation: never fails. If every candidate bucket is
    /// full, the entry is kept in an exact spill list keyed by its base
    /// address and fingerprint pair, so aggregation never loses or misplaces
    /// weight (Algorithm 2's no-additional-error guarantee).
    pub fn insert_aggregated(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        weight: i64,
    ) {
        if self.try_insert(addr_src, addr_dst, fp_src, fp_dst, None, weight) {
            return;
        }
        let addr_src = addr_src % self.side;
        let addr_dst = addr_dst % self.side;
        if let Some(existing) = self.spill.iter_mut().find(|e| {
            e.addr_src == addr_src
                && e.addr_dst == addr_dst
                && e.fp_src == fp_src
                && e.fp_dst == fp_dst
        }) {
            existing.weight += weight;
        } else {
            self.spill.push(SpillEntry {
                addr_src,
                addr_dst,
                fp_src,
                fp_dst,
                weight,
            });
        }
    }

    /// Decrements a previously inserted edge. Matching entries are searched
    /// across all candidate buckets; if `filter` is given, only entries whose
    /// offset lies inside it are decremented. Returns `true` if any entry was
    /// found.
    pub fn try_delete(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        filter: OffsetFilter,
        weight: i64,
    ) -> bool {
        for i in 0..self.mapping {
            let row = self.seq.address(addr_src % self.side, i);
            for j in 0..self.mapping {
                let col = self.seq.address(addr_dst % self.side, j);
                let idx = self.bucket_index(row, col);
                for entry in &mut self.buckets[idx] {
                    let offset_ok = match filter {
                        None => true,
                        Some((lo, hi)) => entry.time_offset >= lo && entry.time_offset <= hi,
                    };
                    if entry.fp_src == fp_src
                        && entry.fp_dst == fp_dst
                        && entry.idx_src == i as u8
                        && entry.idx_dst == j as u8
                        && offset_ok
                    {
                        entry.weight -= weight;
                        return true;
                    }
                }
            }
        }
        let (addr_src, addr_dst) = (addr_src % self.side, addr_dst % self.side);
        if let Some(entry) = self.spill.iter_mut().find(|e| {
            e.addr_src == addr_src
                && e.addr_dst == addr_dst
                && e.fp_src == fp_src
                && e.fp_dst == fp_dst
        }) {
            entry.weight -= weight;
            return true;
        }
        false
    }

    /// Edge query: sums entries matching the fingerprint pair (and offset
    /// filter) over all candidate buckets. Never underestimates.
    pub fn edge_weight(
        &self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        filter: OffsetFilter,
    ) -> u64 {
        let mut total = 0i64;
        for i in 0..self.mapping {
            let row = self.seq.address(addr_src % self.side, i);
            for j in 0..self.mapping {
                let col = self.seq.address(addr_dst % self.side, j);
                let idx = self.bucket_index(row, col);
                for entry in &self.buckets[idx] {
                    if entry.fp_src == fp_src
                        && entry.fp_dst == fp_dst
                        && entry.idx_src == i as u8
                        && entry.idx_dst == j as u8
                        && Self::offset_matches(entry, filter)
                    {
                        total += entry.weight;
                    }
                }
            }
        }
        let (addr_src, addr_dst) = (addr_src % self.side, addr_dst % self.side);
        total += self
            .spill
            .iter()
            .filter(|e| {
                e.addr_src == addr_src
                    && e.addr_dst == addr_dst
                    && e.fp_src == fp_src
                    && e.fp_dst == fp_dst
            })
            .map(|e| e.weight)
            .sum::<i64>();
        total.max(0) as u64
    }

    /// Source-vertex query: sums entries in the candidate rows whose source
    /// fingerprint (and row index) match (Eq. (2) of the paper, extended to
    /// MMB rows).
    pub fn src_weight(&self, addr_src: u64, fp_src: u32, filter: OffsetFilter) -> u64 {
        let mut total = 0i64;
        for i in 0..self.mapping {
            let row = self.seq.address(addr_src % self.side, i);
            let base = (row * self.side) as usize;
            for bucket in &self.buckets[base..base + self.side as usize] {
                for entry in bucket {
                    if entry.fp_src == fp_src
                        && entry.idx_src == i as u8
                        && Self::offset_matches(entry, filter)
                    {
                        total += entry.weight;
                    }
                }
            }
        }
        let addr_src = addr_src % self.side;
        total += self
            .spill
            .iter()
            .filter(|e| e.addr_src == addr_src && e.fp_src == fp_src)
            .map(|e| e.weight)
            .sum::<i64>();
        total.max(0) as u64
    }

    /// Destination-vertex query: sums entries in the candidate columns whose
    /// destination fingerprint (and column index) match.
    pub fn dst_weight(&self, addr_dst: u64, fp_dst: u32, filter: OffsetFilter) -> u64 {
        let mut total = 0i64;
        for j in 0..self.mapping {
            let col = self.seq.address(addr_dst % self.side, j);
            for row in 0..self.side {
                let idx = self.bucket_index(row, col);
                for entry in &self.buckets[idx] {
                    if entry.fp_dst == fp_dst
                        && entry.idx_dst == j as u8
                        && Self::offset_matches(entry, filter)
                    {
                        total += entry.weight;
                    }
                }
            }
        }
        let addr_dst = addr_dst % self.side;
        total += self
            .spill
            .iter()
            .filter(|e| e.addr_dst == addr_dst && e.fp_dst == fp_dst)
            .map(|e| e.weight)
            .sum::<i64>();
        total.max(0) as u64
    }

    #[inline]
    fn offset_matches(entry: &Entry, filter: OffsetFilter) -> bool {
        match filter {
            None => true,
            Some((lo, hi)) => entry.time_offset >= lo && entry.time_offset <= hi,
        }
    }

    /// Iterates over all stored entries together with the row/column of the
    /// bucket holding them (used by aggregation).
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64, &Entry)> {
        self.buckets.iter().enumerate().flat_map(move |(idx, bucket)| {
            let row = idx as u64 / self.side;
            let col = idx as u64 % self.side;
            bucket.iter().map(move |e| (row, col, e))
        })
    }

    /// The LCG address sequence used by this matrix (needed to map stored
    /// bucket positions back to base addresses during aggregation).
    pub fn address_sequence(&self) -> AddressSequence {
        self.seq
    }

    /// Memory footprint in bytes.
    pub fn space_bytes(&self) -> usize {
        let entries: usize = self
            .buckets
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<Entry>())
            .sum();
        entries
            + self.buckets.capacity() * std::mem::size_of::<Vec<Entry>>()
            + self.spill.capacity() * std::mem::size_of::<SpillEntry>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CompressedMatrix {
        CompressedMatrix::new(8, 1, 3, 4)
    }

    #[test]
    fn insert_and_edge_query() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 7));
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 7);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((0, 10))), 7);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((6, 10))), 0);
    }

    #[test]
    fn same_edge_same_offset_accumulates() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 3));
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 4));
        assert_eq!(m.stored(), 1);
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 7);
    }

    #[test]
    fn same_edge_different_offset_uses_two_entries() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 3));
        assert!(m.try_insert(1, 2, 100, 200, Some(9), 4));
        assert_eq!(m.stored(), 2);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((0, 6))), 3);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((6, 9))), 4);
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 7);
    }

    #[test]
    fn aggregated_mode_ignores_offsets() {
        let mut m = CompressedMatrix::new(8, 2, 3, 4);
        assert!(m.try_insert(1, 2, 10, 20, None, 3));
        assert!(m.try_insert(1, 2, 10, 20, None, 4));
        assert_eq!(m.stored(), 1);
        assert_eq!(m.edge_weight(1, 2, 10, 20, None), 7);
    }

    #[test]
    fn distinct_fingerprints_do_not_mix() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(0), 5));
        assert!(m.try_insert(1, 2, 101, 200, Some(0), 9));
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 5);
        assert_eq!(m.edge_weight(1, 2, 101, 200, None), 9);
    }

    #[test]
    fn insertion_fails_when_all_candidates_full() {
        // 2×2 matrix, 1 entry per bucket, 1 mapping address: capacity 4 but a
        // single (addr, addr) pair only ever sees one bucket.
        let mut m = CompressedMatrix::new(2, 1, 1, 1);
        assert!(m.try_insert(0, 0, 1, 1, Some(0), 1));
        assert!(!m.try_insert(0, 0, 2, 2, Some(0), 1), "bucket is full");
    }

    #[test]
    fn mmb_increases_effective_capacity() {
        let mut without = CompressedMatrix::new(4, 1, 1, 1);
        let mut with = CompressedMatrix::new(4, 1, 1, 4);
        let mut placed_without = 0;
        let mut placed_with = 0;
        for k in 0..64u32 {
            // All edges share the same base address pair: the worst case MMB
            // is designed for.
            if without.try_insert(1, 1, k, k, Some(0), 1) {
                placed_without += 1;
            }
            if with.try_insert(1, 1, k, k, Some(0), 1) {
                placed_with += 1;
            }
        }
        assert!(placed_with > placed_without);
    }

    #[test]
    fn vertex_queries_sum_rows_and_columns() {
        let mut m = matrix();
        m.try_insert(3, 1, 10, 21, Some(0), 2);
        m.try_insert(3, 2, 10, 22, Some(0), 3);
        m.try_insert(4, 1, 11, 21, Some(0), 5);
        assert_eq!(m.src_weight(3, 10, None), 5);
        assert_eq!(m.dst_weight(1, 21, None), 7);
        assert_eq!(m.src_weight(4, 11, None), 5);
    }

    #[test]
    fn vertex_query_respects_offset_filter() {
        let mut m = matrix();
        m.try_insert(3, 1, 10, 21, Some(2), 2);
        m.try_insert(3, 2, 10, 22, Some(8), 3);
        assert_eq!(m.src_weight(3, 10, Some((0, 4))), 2);
        assert_eq!(m.src_weight(3, 10, Some((5, 9))), 3);
    }

    #[test]
    fn delete_decrements_weight() {
        let mut m = matrix();
        m.try_insert(1, 2, 100, 200, Some(5), 7);
        assert!(m.try_delete(1, 2, 100, 200, Some((5, 5)), 3));
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 4);
        assert!(!m.try_delete(1, 2, 100, 200, Some((9, 9)), 1));
    }

    #[test]
    fn insert_aggregated_never_fails_or_loses_attribution() {
        let mut m = CompressedMatrix::new(2, 2, 1, 1);
        for k in 0..20u32 {
            m.insert_aggregated(0, 0, k, k, 1);
        }
        assert!(m.spill_len() > 0, "tiny aggregate must spill");
        assert_eq!(m.total_weight(), 20);
        // Every spilled edge remains individually queryable: no weight is
        // credited to the wrong fingerprint.
        for k in 0..20u32 {
            assert_eq!(m.edge_weight(0, 0, k, k, None), 1);
        }
        // Vertex queries see spilled entries too.
        assert_eq!(m.src_weight(0, 5, None), 1);
        assert_eq!(m.dst_weight(0, 7, None), 1);
        // Deleting a spilled entry works.
        assert!(m.try_delete(0, 0, 9, 9, None, 1));
        assert_eq!(m.edge_weight(0, 0, 9, 9, None), 0);
    }

    #[test]
    fn entries_iterator_reports_positions() {
        let mut m = matrix();
        m.try_insert(1, 2, 100, 200, Some(0), 7);
        let collected: Vec<_> = m.entries().collect();
        assert_eq!(collected.len(), 1);
        let (row, col, e) = collected[0];
        assert!(row < 8 && col < 8);
        assert_eq!(e.weight, 7);
    }

    #[test]
    fn utilization_and_space() {
        let mut m = matrix();
        assert_eq!(m.utilization(), 0.0);
        m.try_insert(1, 2, 1, 2, Some(0), 1);
        assert!(m.utilization() > 0.0);
        assert!(m.space_bytes() > 0);
        assert_eq!(m.capacity(), 3 * 64);
        assert_eq!(m.side(), 8);
        assert_eq!(m.layer(), 1);
        assert!(!m.is_empty());
    }
}
