//! Sharded, concurrently-served HIGGS: the scale-out service layer.
//!
//! [`ShardedHiggs`] partitions one logical summary into a fixed number of
//! [`HiggsSummary`](crate::HiggsSummary) shards by **hash of the source
//! vertex**
//! ([`higgs_common::hashing::shard_of`]). Every component routes with that
//! one function, which yields the invariants the whole layer rests on:
//!
//! * **Ingest** — each shard owns a dedicated writer thread fed over a
//!   `crossbeam` channel. The ingest caller only hashes and enqueues; the
//!   writer applies the edge to its shard's [`ParallelHiggs`], so group-close
//!   aggregation stays off the ingest path *twice removed* (first onto the
//!   writer, then onto the shard's aggregation workers). Per-source ordering
//!   is preserved because a source always routes to the same FIFO channel.
//! * **Query serving** — `query`/`query_batch` decompose a batch with
//!   [`ShardPlan`]: edge queries and out-direction vertex queries go to the
//!   owning source shard, path/subgraph queries split into per-hop edge
//!   queries routed by each hop's source, and in-direction vertex queries
//!   fan out to every shard and sum. Each shard evaluates its sub-batch
//!   through the plan-sharing executor of PR 2, so a batch still costs at
//!   most one Algorithm-3 boundary search per distinct [`TimeRange`] *per
//!   shard*.
//! * **Visibility** — the service is read-your-writes: every trait query
//!   first waits for all previously enqueued mutations (and the background
//!   aggregations they triggered) to land, tracked by a cheap atomic clock,
//!   so the [`TemporalGraphSummary`] contract — including one-sided error —
//!   holds exactly as for an unsharded summary. Reads that arrive while
//!   *other* threads are still ingesting observe a **per-shard prefix** of
//!   the stream: each shard reflects a prefix of its own (per-source-ordered)
//!   sub-stream, but shards progress independently, so the combined view
//!   need not be a prefix of the global arrival order. Since counters only
//!   grow under insertion, every mid-ingest estimate still lies between the
//!   pre-ingest and the fully-flushed result (regression-tested).
//!
//! Concurrent ingest from a non-`&mut` context (a serving loop, multiple
//! producers) goes through a cloneable [`IngestHandle`].
//!
//! **Ingest backpressure.** By default the writer channels are unbounded: a
//! producer that sustainedly enqueues faster than the writers apply (enqueue
//! runs orders of magnitude faster, see the `sharding` bench) grows the
//! queue without bound. Configuring
//! [`HiggsConfigBuilder::ingest_queue_cap`](crate::HiggsConfigBuilder::ingest_queue_cap)
//! bounds each shard's queue at `n` commands instead: once a shard's writer
//! is `n` commands behind, sends into that shard **block** until the writer
//! catches up, so sustained overload turns into producer backpressure
//! rather than memory growth. (One command is one edge, one deletion, or
//! one routed `insert_all` batch of up to 512 edges.) Unbounded producers
//! that prefer pacing to blocking can instead checkpoint on
//! [`ShardedHiggs::flush`] / [`IngestHandle::flush`], and producers that
//! prefer failing fast to blocking can use [`IngestHandle::try_insert`] /
//! [`IngestHandle::try_delete`]. Every ingest outcome is typed: mutation
//! methods return `Result<(), IngestError>` distinguishing backpressure
//! ([`IngestError::QueueFull`]), a torn-down service
//! ([`IngestError::Shutdown`]) and load-shedding rejection
//! ([`IngestError::Rejected`]).
//!
//! **Plan caching.** Each shard's summary owns a cross-batch
//! [`PlanCache`](crate::PlanCache) (see [`plan_cache`](crate::plan_cache)):
//! repeated windows are planned at most once per shard until the shard
//! mutates. The cache composes with the flush clock: writers bump the
//! shard's mutation epoch while applying commands under the write lock, and
//! every trait query first waits for previously enqueued mutations to land
//! (`ensure_visible`), so a query can never be served a plan that predates
//! a mutation it is entitled to observe — read-your-writes holds through
//! the cache exactly as without it.

use crate::config::{ConfigError, HiggsConfig, JournalMode};
use crate::history::HistoryLog;
use crate::journal::{failpoint, Journal, JournalError};
use crate::parallel::ParallelHiggs;
use crate::reshard::{fold_history, ReshardError};
use crate::snapshot::SnapshotError;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use higgs_common::hashing::shard_of;
use higgs_common::{
    Query, ShardPlan, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection, VertexId,
    Weight,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on the shard count: each shard owns a writer thread plus
/// aggregation workers, so the fan-out is validated by
/// [`HiggsConfig::validate`].
pub const MAX_SHARDS: usize = 64;

/// How many queued commands a writer applies per lock acquisition before
/// re-taking the shard lock, bounding both lock churn (ingest) and reader
/// starvation (serving).
const WRITER_COALESCE: usize = 64;

/// Edges per routed batch sent by [`IngestHandle::insert_all`]; amortises one
/// channel send over many edges without letting per-shard buffers grow large.
const INGEST_CHUNK: usize = 512;

/// Writer respawns allowed per shard over a service's lifetime. A persistent
/// fault (e.g. ENOSPC on every journal append) would otherwise loop
/// rebuild → fail → respawn forever, burning CPU on repeated snapshot+replay;
/// once the budget is spent the shard degrades permanently and its writer
/// drains in place.
pub const MAX_WRITER_RESPAWNS: u32 = 8;

/// Base backoff a respawned writer sleeps before retrying recovery; doubles
/// per attempt up to [`RESPAWN_BACKOFF_CAP_MS`]. The first respawn is
/// immediate — a one-off panic recovers with no added latency.
const RESPAWN_BACKOFF_BASE_MS: u64 = 10;

/// Ceiling on the per-respawn recovery backoff.
const RESPAWN_BACKOFF_CAP_MS: u64 = 640;

/// Process-wide count of live shard writer threads.
static LIVE_WRITERS: AtomicUsize = AtomicUsize::new(0);

/// Number of shard writer threads currently alive in this process, across
/// every [`ShardedHiggs`] instance. Drop joins a service's writers, so after
/// the last service is gone this returns to zero — the regression hook the
/// snapshot/restore tests use to prove repeated restore cycles never leak
/// writer threads.
pub fn live_writer_threads() -> usize {
    LIVE_WRITERS.load(Ordering::SeqCst)
}

/// RAII increment of [`LIVE_WRITERS`]. Created on the **spawning** side
/// (before the thread runs) and moved into the writer thread, so the count
/// covers the writer's whole lifetime deterministically: it reads `shards`
/// the instant construction returns and `0` the instant drop's join
/// returns. Decrements on any exit path, panic included.
struct WriterGuard;

impl WriterGuard {
    fn enter() -> Self {
        LIVE_WRITERS.fetch_add(1, Ordering::SeqCst);
        WriterGuard
    }
}

impl Drop for WriterGuard {
    fn drop(&mut self) {
        LIVE_WRITERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A command processed by one shard's writer thread, in FIFO order.
/// Mutations carry the global sequence number stamped at routing time (see
/// [`IngestHandle`]); an `InsertBatch`'s `seqs` run parallel to its edges.
/// Non-elastic services stamp and ignore them — only the elastic history log
/// persists sequence numbers.
#[allow(clippy::large_enum_variant)]
enum ShardCommand {
    Insert(StreamEdge, u64),
    InsertBatch(Vec<StreamEdge>, Vec<u64>),
    Delete(StreamEdge, u64),
    /// Flush the shard's aggregation pipeline, then acknowledge. Because the
    /// channel is FIFO, the acknowledgement also proves every earlier
    /// mutation on this shard has been applied.
    Flush(Sender<()>),
    /// Terminate the writer thread. Sent by `ShardedHiggs::drop` so teardown
    /// does not depend on every [`IngestHandle`] clone being gone (a live
    /// clone keeps the channel open, and a writer blocked in `recv` would
    /// otherwise never join). Commands enqueued after it are dropped.
    Shutdown,
    /// Park the writer at a snapshot fence: flush the shard pipeline, sync
    /// the journal, acknowledge on `ready`, then block until `resume`
    /// delivers the verdict. `Some(checksum)` means the snapshot that
    /// motivated the fence covers every journaled mutation: the journal is
    /// truncated and stamped with the new manifest's checksum.
    /// `None` (or a dropped sender) resumes without touching it. After
    /// acting on the verdict the writer acknowledges on `ready` a second
    /// time, making the rotation synchronous for the fence holder.
    Fence {
        ready: Sender<()>,
        resume: Receiver<Option<u64>>,
    },
}

/// Health of one shard's writer, reported by [`ShardedHiggs::shard_health`].
///
/// A shard degrades when its writer fails — an apply panic, a journal append
/// error, or a failed journal rotation. Durable services
/// ([`ShardedHiggs::new_durable`]) respawn the writer from snapshot + journal
/// replay and return to `Healthy`; non-durable services have no recovery
/// source, so the shard stays `Degraded` (its writer keeps draining commands
/// to acknowledge flushes and honour shutdown, but mutations are dropped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// The writer is live and applying mutations.
    Healthy,
    /// The writer failed; queries routed at this shard should fail fast.
    Degraded,
}

/// `AtomicU8` encodings of [`ShardHealth`] on the shared health board.
const HEALTH_HEALTHY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;

/// Cheap cloneable read view of the per-shard health board, handed to the
/// serving layer so its admission loop can fail queries routed at degraded
/// shards fast without holding a reference to the whole [`ShardedHiggs`].
#[derive(Clone)]
pub(crate) struct HealthBoard {
    slots: Arc<Vec<AtomicU8>>,
}

impl HealthBoard {
    /// Whether `shard`'s writer is currently degraded.
    pub(crate) fn is_degraded(&self, shard: usize) -> bool {
        // ORDERING: Acquire pairs with the Release stores in
        // `mark_degraded` / `recover_and_serve`: observing a health
        // transition also observes the pipeline state it published.
        self.slots[shard].load(Ordering::Acquire) == HEALTH_DEGRADED
    }
}

/// Durable-mode state shared by the service, its writers, and respawned
/// recovery writers: where the journals live and how they sync.
#[derive(Debug)]
pub(crate) struct DurableState {
    pub(crate) dir: PathBuf,
    pub(crate) mode: JournalMode,
    /// Aggregation workers per shard, needed to rebuild a pipeline during
    /// writer recovery.
    pub(crate) workers_per_shard: usize,
    /// `Some(generation)` when the store is *elastic*: every writer also
    /// appends to a [`HistoryLog`] of this generation, and the service can
    /// be resharded. A reshard retires the whole writer set and opens
    /// generation `+ 1`; see the [`history`](crate::history) module docs.
    pub(crate) history_gen: Option<u64>,
}

/// Everything a writer thread needs, bundled so a supervisor can hand an
/// identical context to a respawned replacement. Cloning is cheap: the
/// receiver and the shared state are reference-counted, the config is `Copy`.
#[derive(Clone)]
struct WriterContext {
    shard_index: usize,
    config: HiggsConfig,
    shard: Arc<RwLock<ParallelHiggs>>,
    rx: Receiver<ShardCommand>,
    discard: Arc<std::sync::atomic::AtomicBool>,
    health: Arc<Vec<AtomicU8>>,
    durable: Option<Arc<DurableState>>,
    /// Join handles of respawned recovery writers; finished generations are
    /// drained on each respawn, the rest by `ShardedHiggs::drop` after the
    /// original writers are joined.
    respawned: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Per-shard count of writer respawns over the service's lifetime:
    /// drives the exponential recovery backoff and the
    /// [`MAX_WRITER_RESPAWNS`] failure budget. Never reset — a fault that
    /// keeps recurring must eventually park the shard instead of looping.
    respawn_attempts: Arc<Vec<AtomicU32>>,
    /// Per-shard record of why the most recent recovery attempt failed
    /// (cleared on success), surfaced through
    /// [`ShardedHiggs::shard_recovery_errors`] so operators can tell journal
    /// corruption from transient I/O or a missing manifest.
    recovery_errors: Arc<Vec<Mutex<Option<String>>>>,
}

/// Monotone clock tracking ingest visibility: `sent` counts mutation
/// commands enqueued across all shards, `visible` the `sent` watermark the
/// last completed flush is known to cover.
#[derive(Debug, Default)]
struct FlushClock {
    sent: AtomicU64,
    visible: AtomicU64,
}

/// Why an ingest operation was not enqueued. Returned by the fallible
/// [`IngestHandle`] surface (`insert` / `insert_all` / `delete` /
/// `try_insert` / `try_delete`), replacing the old untyped `bool` returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// Backpressure: the owning shard's bounded ingest queue is at capacity
    /// (see
    /// [`HiggsConfigBuilder::ingest_queue_cap`](crate::HiggsConfigBuilder::ingest_queue_cap)).
    /// Only the non-blocking `try_*` methods report this — the blocking
    /// methods wait for space instead. Retrying later can succeed.
    QueueFull,
    /// The service has shut down: the shard writer threads are gone, so no
    /// mutation can ever be applied again. Terminal for this handle.
    Shutdown,
    /// The service is in load-shedding teardown
    /// ([`ShardedHiggs::discard_pending`]): writers drop queued commands
    /// unapplied, so the mutation is rejected instead of silently shed.
    /// Terminal for this handle (shedding is irreversible).
    Rejected,
    /// This client serves a read-only replica
    /// ([`ReplicaService`](crate::ReplicaService)): followers apply only
    /// what the leader's journals ship, so local mutations are refused.
    /// Terminal for this handle — send writes to the leader.
    ReadOnly,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::QueueFull => {
                write!(
                    f,
                    "ingest queue full: shard writer is at capacity (backpressure)"
                )
            }
            IngestError::Shutdown => {
                write!(f, "service shut down: shard writers are gone")
            }
            IngestError::Rejected => {
                write!(f, "mutation rejected: service is in load-shedding teardown")
            }
            IngestError::ReadOnly => {
                write!(
                    f,
                    "read-only replica: followers only apply mutations shipped \
                     from the leader's journals"
                )
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// A cloneable ingest endpoint for [`ShardedHiggs`]: routes mutations to the
/// owning shard's writer over its channel. All methods take `&self`, so any
/// number of producer threads can ingest while other threads serve queries
/// from the shared [`ShardedHiggs`].
///
/// Mutations enqueued through a handle become visible to trait queries on
/// the parent summary no later than the next query (read-your-writes via the
/// shared flush clock).
#[derive(Clone, Debug)]
pub struct IngestHandle {
    /// The routing table: one sender per shard. Behind an `RwLock` so an
    /// online [`ShardedHiggs::reshard`] can swap the whole writer set under
    /// every surviving handle clone: sends take the read lock, the reshard
    /// takes the write lock for the duration of the swap. Uncontended reads
    /// are a single atomic, so the steady-state ingest path is unchanged.
    router: Arc<RwLock<Vec<Sender<ShardCommand>>>>,
    clock: Arc<FlushClock>,
    /// Shared with the service and its writers: set once the service enters
    /// load-shedding teardown, after which enqueuing is pointless and every
    /// mutation method reports [`IngestError::Rejected`].
    discard: Arc<std::sync::atomic::AtomicBool>,
    /// Global mutation sequence counter, shared by every handle clone and
    /// surviving reshards. Each mutation is stamped at routing time; the
    /// elastic history log persists the stamp so the global mutation order
    /// can be reconstructed across shards (see [`crate::history`]).
    seq: Arc<AtomicU64>,
}

impl IngestHandle {
    /// Stamps the next global sequence number.
    fn next_seq(&self) -> u64 {
        // ORDERING: Relaxed — the stamp only needs uniqueness; the global
        // order is reconstructed by *sorting* on read (per-file order is not
        // trusted), so no cross-thread ordering is required here.
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Reserves `n` consecutive sequence numbers, returning the first.
    fn reserve_seqs(&self, n: u64) -> u64 {
        // ORDERING: Relaxed — see `next_seq`.
        self.seq.fetch_add(n, Ordering::Relaxed)
    }

    /// The current routing table. Sends hold this read guard across the
    /// channel send, so a reshard's write lock cannot retire a writer while
    /// a command is in flight towards it.
    fn senders(&self) -> RwLockReadGuard<'_, Vec<Sender<ShardCommand>>> {
        self.router.read().expect("router lock poisoned")
    }
    /// Whether the service has entered irreversible load-shedding teardown.
    fn shedding(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in
        // `ShardedHiggs::discard_pending`, matching the writers' view of the
        // flag: once a producer observes shedding it also observes the state
        // the shedder published before flipping it.
        self.discard.load(Ordering::Acquire)
    }

    fn mark_sent(&self) {
        // ORDERING: Release — orders the enqueue onto the channel before the
        // clock tick, pairing with the Acquire loads in `flush` /
        // `ensure_visible`: a reader that sees tick N also sees the N
        // enqueues, so read-your-writes cannot miss a mutation.
        self.clock.sent.fetch_add(1, Ordering::Release);
    }

    /// Number of shards this handle routes over. Can change across an online
    /// [`ShardedHiggs::reshard`].
    pub fn num_shards(&self) -> usize {
        self.senders().len()
    }

    /// Enqueues one stream item on its source's shard, blocking for queue
    /// space when the ingest queues are bounded.
    ///
    /// Errors are typed: [`IngestError::Shutdown`] if the service has been
    /// dropped (the writers are gone), [`IngestError::Rejected`] if it
    /// entered load-shedding teardown. The blocking path never reports
    /// [`IngestError::QueueFull`] — use [`try_insert`](Self::try_insert) to
    /// fail fast instead of blocking.
    ///
    /// The flush clock is advanced only *after* a successful send: a
    /// concurrent flush whose target covers this mutation is then guaranteed
    /// to find it already in the FIFO ahead of the flush marker, so
    /// read-your-writes never marks an unsent command visible.
    pub fn insert(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        if self.shedding() {
            return Err(IngestError::Rejected);
        }
        let senders = self.senders();
        if senders.is_empty() {
            // The service was dropped and retired its routing table.
            return Err(IngestError::Shutdown);
        }
        let seq = self.next_seq();
        let result = senders[shard_of(edge.src, senders.len())]
            .send(ShardCommand::Insert(*edge, seq))
            .map_err(|_| IngestError::Shutdown);
        self.mark_sent();
        result
    }

    /// Enqueues one stream item without blocking: where
    /// [`insert`](Self::insert) would wait for queue space, this returns
    /// [`IngestError::QueueFull`] immediately and the caller decides whether
    /// to retry, shed, or back off.
    pub fn try_insert(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        if self.shedding() {
            return Err(IngestError::Rejected);
        }
        let senders = self.senders();
        if senders.is_empty() {
            return Err(IngestError::Shutdown);
        }
        match senders[shard_of(edge.src, senders.len())]
            .try_send(ShardCommand::Insert(*edge, self.next_seq()))
        {
            Ok(()) => {
                self.mark_sent();
                Ok(())
            }
            Err(crossbeam::channel::TrySendError::Full(_)) => Err(IngestError::QueueFull),
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => Err(IngestError::Shutdown),
        }
    }

    /// Enqueues a slice of stream items in arrival order, batching the
    /// routed edges per shard so a long stream costs one channel send per
    /// `INGEST_CHUNK` (512) edges instead of one per edge. Per-source order
    /// is preserved (routing is deterministic and channels are FIFO).
    ///
    /// An `Err` means part of the slice was **not** enqueued: the service
    /// shut down mid-call ([`IngestError::Shutdown`]) or was shedding load
    /// ([`IngestError::Rejected`]). Because batches are routed per shard,
    /// the enqueued part is not a prefix of `edges` — the slice cannot be
    /// resumed from an offset, so treat any error as "this service is
    /// gone", exactly like an `Err` from [`insert`](Self::insert).
    pub fn insert_all(&self, edges: &[StreamEdge]) -> Result<(), IngestError> {
        if self.shedding() {
            return Err(IngestError::Rejected);
        }
        let senders = self.senders();
        if senders.is_empty() {
            return Err(IngestError::Shutdown);
        }
        let shards = senders.len();
        // One contiguous sequence block for the whole slice: edge `i` is
        // stamped `base + i`, so arrival order and sequence order coincide
        // for this call however the edges scatter over shards.
        let base = self.reserve_seqs(edges.len() as u64);
        let send_batch = |shard: usize, batch: Vec<StreamEdge>, seqs: Vec<u64>| -> bool {
            let ok = senders[shard]
                .send(ShardCommand::InsertBatch(batch, seqs))
                .is_ok();
            self.mark_sent();
            ok
        };
        let mut buffers: Vec<(Vec<StreamEdge>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); shards];
        for (i, edge) in edges.iter().enumerate() {
            let shard = shard_of(edge.src, shards);
            let (batch, seqs) = &mut buffers[shard];
            batch.push(*edge);
            seqs.push(base + i as u64);
            if batch.len() >= INGEST_CHUNK {
                let batch = std::mem::take(batch);
                let seqs = std::mem::take(seqs);
                if !send_batch(shard, batch, seqs) {
                    // The writers are being torn down; every further send
                    // would fail too, so stop routing.
                    return Err(IngestError::Shutdown);
                }
            }
        }
        for (shard, (batch, seqs)) in buffers.into_iter().enumerate() {
            if !batch.is_empty() && !send_batch(shard, batch, seqs) {
                return Err(IngestError::Shutdown);
            }
        }
        Ok(())
    }

    /// Enqueues a deletion on the owning shard; ordered after every earlier
    /// mutation of the same source (same FIFO channel). Blocks for queue
    /// space like [`insert`](Self::insert) and reports the same typed
    /// errors.
    pub fn delete(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        if self.shedding() {
            return Err(IngestError::Rejected);
        }
        let senders = self.senders();
        if senders.is_empty() {
            return Err(IngestError::Shutdown);
        }
        let seq = self.next_seq();
        let result = senders[shard_of(edge.src, senders.len())]
            .send(ShardCommand::Delete(*edge, seq))
            .map_err(|_| IngestError::Shutdown);
        self.mark_sent();
        result
    }

    /// Enqueues a deletion without blocking; the non-blocking counterpart of
    /// [`delete`](Self::delete), reporting [`IngestError::QueueFull`] where
    /// the blocking path would wait.
    pub fn try_delete(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        if self.shedding() {
            return Err(IngestError::Rejected);
        }
        let senders = self.senders();
        if senders.is_empty() {
            return Err(IngestError::Shutdown);
        }
        match senders[shard_of(edge.src, senders.len())]
            .try_send(ShardCommand::Delete(*edge, self.next_seq()))
        {
            Ok(()) => {
                self.mark_sent();
                Ok(())
            }
            Err(crossbeam::channel::TrySendError::Full(_)) => Err(IngestError::QueueFull),
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => Err(IngestError::Shutdown),
        }
    }

    /// Blocks until every mutation enqueued before this call — by any clone
    /// of this handle — has been applied and its background aggregations
    /// installed.
    pub fn flush(&self) {
        // ORDERING: Acquire pairs with the Release fetch_add in `mark_sent`:
        // reading tick `target` guarantees the `target` enqueues that
        // preceded it are visible to the writers we are about to flush.
        let target = self.clock.sent.load(Ordering::Acquire);
        let (ack_tx, ack_rx) = unbounded::<()>();
        let mut expected = 0usize;
        for sender in self.senders().iter() {
            if sender.send(ShardCommand::Flush(ack_tx.clone())).is_ok() {
                expected += 1;
            }
        }
        drop(ack_tx);
        for _ in 0..expected {
            if ack_rx.recv().is_err() {
                break; // a writer exited; nothing further can be flushed
            }
        }
        // ORDERING: AcqRel — Release publishes "everything up to `target` is
        // applied" to later Acquire readers of `visible` (`ensure_visible`);
        // Acquire keeps concurrent flushers' max-updates ordered so the
        // clock never appears to run backwards.
        self.clock.visible.fetch_max(target, Ordering::AcqRel);
    }

    /// Ensures every mutation enqueued so far is visible, flushing only when
    /// the clock says some might not be (crate-internal: the serving layer's
    /// admission loop uses it to honour read-your-writes once per tick).
    pub(crate) fn ensure_visible(&self) {
        // ORDERING: both Acquire — `visible` pairs with the AcqRel fetch_max
        // in `flush`, `sent` with the Release fetch_add in `mark_sent`; a
        // stale read of either can only under-report, which at worst takes
        // the (idempotent) flush path once too often, never skips it.
        if self.clock.visible.load(Ordering::Acquire) < self.clock.sent.load(Ordering::Acquire) {
            self.flush();
        }
    }
}

/// A source-sharded HIGGS service: `N` independent
/// [`HiggsSummary`](crate::HiggsSummary) trees, each fed by its own writer
/// thread and aggregation pipeline, queried as a single
/// [`TemporalGraphSummary`].
///
/// See the [module docs](self) for the routing rules and consistency model,
/// and the crate docs' *Scaling out* section for how this layer composes
/// with the rest of the system.
///
/// ```
/// use higgs::{HiggsConfig, ShardedHiggs};
/// use higgs_common::{Query, StreamEdge, TemporalGraphSummary, TimeRange};
///
/// let config = HiggsConfig::builder().shards(4).build().expect("valid");
/// let mut service = ShardedHiggs::new(config);
/// service.insert(&StreamEdge::new(1, 2, 5, 10));
/// service.insert(&StreamEdge::new(2, 3, 2, 11));
/// // Trait queries are read-your-writes: the enqueued edges are visible.
/// assert_eq!(
///     service.query_batch(&[
///         Query::edge(1, 2, TimeRange::new(0, 20)),
///         Query::path(vec![1, 2, 3], TimeRange::new(0, 20)),
///     ]),
///     vec![5, 7]
/// );
/// ```
pub struct ShardedHiggs {
    shards: Vec<Arc<RwLock<ParallelHiggs>>>,
    handle: IngestHandle,
    writers: Vec<JoinHandle<()>>,
    /// When set, writers drop queued commands unapplied instead of applying
    /// them; see [`Self::discard_pending`].
    discard: Arc<std::sync::atomic::AtomicBool>,
    /// Per-shard health board shared with the writers and the serving layer;
    /// see [`ShardHealth`].
    health: Arc<Vec<AtomicU8>>,
    /// Join handles of writers respawned after a failure (see
    /// `supervise_failure`); joined by drop after the original writers.
    respawned: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Per-shard respawn counters (shared with the writers' supervision
    /// path); see [`MAX_WRITER_RESPAWNS`].
    respawn_attempts: Arc<Vec<AtomicU32>>,
    /// Per-shard last recovery failure, exposed via
    /// [`Self::shard_recovery_errors`].
    recovery_errors: Arc<Vec<Mutex<Option<String>>>>,
    /// `Some` when this service journals mutations (durable mode).
    durable: Option<Arc<DurableState>>,
    config: HiggsConfig,
}

impl std::fmt::Debug for ShardedHiggs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHiggs")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// Applies one mutation or flush to the shard pipeline. Runs under the shard
/// write lock, wrapped in `catch_unwind` by the caller so a panic degrades
/// the shard instead of tearing down the process (or poisoning the lock —
/// the lock guard lives outside the unwind boundary).
fn apply(pipeline: &mut ParallelHiggs, command: ShardCommand) {
    failpoint!("shard::apply");
    match command {
        ShardCommand::Insert(edge, _) => pipeline.insert(&edge),
        ShardCommand::InsertBatch(edges, _) => {
            for edge in &edges {
                pipeline.insert(edge);
            }
        }
        ShardCommand::Delete(edge, _) => pipeline.delete(&edge),
        ShardCommand::Flush(ack) => {
            pipeline.flush();
            let _ = ack.send(());
        }
        ShardCommand::Shutdown | ShardCommand::Fence { .. } => {
            unreachable!("handled by the loop")
        }
    }
}

/// Write-ahead journals one command. Flushes are not journaled (no durable
/// effect); mutations are appended **before** they are applied, so a crash
/// between the two replays the mutation instead of losing it.
fn journal_command(journal: &mut Journal, command: &ShardCommand) -> Result<(), JournalError> {
    match command {
        ShardCommand::Insert(edge, _) => journal.append_insert(edge),
        ShardCommand::InsertBatch(edges, _) => journal.append_insert_batch(edges),
        ShardCommand::Delete(edge, _) => journal.append_delete(edge),
        _ => Ok(()),
    }
}

/// Appends one command to the elastic history log, sequence stamps included.
/// Ordered **before** the journal append (and therefore before the apply):
/// on-disk history is always a superset of `snapshot ∪ journal`, which is
/// what lets resharding fold history alone. A failure after the history
/// append re-drives the command through supervision, and the duplicate
/// history record is collapsed on read (see [`crate::history`]).
fn history_command(history: &mut HistoryLog, command: &ShardCommand) -> Result<(), JournalError> {
    match command {
        ShardCommand::Insert(edge, seq) => history.append_insert(*seq, edge),
        ShardCommand::InsertBatch(edges, seqs) => history.append_insert_batch(edges, seqs),
        ShardCommand::Delete(edge, seq) => history.append_delete(*seq, edge),
        _ => Ok(()),
    }
}

/// How a writer came out of a snapshot fence (see [`ShardCommand::Fence`]).
enum FenceOutcome {
    /// The fence completed; the writer keeps serving.
    Resumed,
    /// The post-snapshot journal rotation failed: the journal still holds
    /// records the snapshot already covers and the shard can no longer be
    /// recovered without double-applying them — the caller must degrade
    /// permanently.
    RotationFailed,
    /// The pipeline flush at the fence panicked. The shard was marked
    /// degraded *before* the ready ack (so the fence holder's post-fence
    /// health re-check aborts the snapshot) and the caller must route
    /// through supervision like an apply panic: every fenced mutation is
    /// already journaled, so a rebuild re-applies them.
    FlushPanicked,
}

/// Parks the writer at a snapshot fence (see [`ShardCommand::Fence`]).
/// Every exit path completes the two-ack fence protocol, so the fence
/// holder never hangs on a failing writer.
fn fence_writer(
    ctx: &WriterContext,
    journal: &mut Option<Journal>,
    history: &mut Option<HistoryLog>,
    ready: Sender<()>,
    resume: Receiver<Option<u64>>,
) -> FenceOutcome {
    let flushed = {
        // The lock guard lives outside the unwind boundary, exactly like the
        // apply path: a panicking flush degrades the shard instead of
        // poisoning the lock and cascading into every later lock user.
        let mut pipeline = ctx.shard.write().expect("shard lock poisoned");
        catch_unwind(AssertUnwindSafe(|| {
            failpoint!("shard::fence_flush");
            pipeline.flush()
        }))
        .is_ok()
    };
    if !flushed {
        // Degrade before acking so the fence holder's re-check (writers all
        // parked, health stable) observes it and releases with "keep".
        mark_degraded(ctx);
        let _ = ready.send(());
        // Ignore the verdict: this shard's pipeline is partial, so its
        // journal must never rotate here (the fence holder aborts anyway).
        let _ = resume.recv();
        let _ = ready.send(());
        return FenceOutcome::FlushPanicked;
    }
    if let Some(j) = journal.as_mut() {
        // Best-effort: durability of the fenced prefix comes from the
        // snapshot the fence guards, not from this sync.
        let _ = j.sync();
    }
    if let Some(h) = history.as_mut() {
        // Likewise best-effort: history appends already left process buffers
        // (per-append flush); the reshard path that reads history behind
        // this fence goes through the same filesystem, not the disk.
        let _ = h.sync();
    }
    let _ = ready.send(());
    let ok = match resume.recv() {
        Ok(Some(covering)) => match journal.as_mut() {
            Some(j) => j.truncate(covering).is_ok(),
            None => true,
        },
        // Snapshot failed or the fence holder is gone: keep the journal.
        _ => true,
    };
    // Completion ack: the fence holder blocks until every writer has
    // committed (or declined) its rotation.
    let _ = ready.send(());
    if ok {
        FenceOutcome::Resumed
    } else {
        FenceOutcome::RotationFailed
    }
}

/// Marks the context's shard degraded on the shared health board.
fn mark_degraded(ctx: &WriterContext) {
    // ORDERING: Release pairs with the Acquire loads in `shard_health` and
    // the serving admission loop: an observer that sees the shard degraded
    // also sees everything the writer published before failing.
    ctx.health[ctx.shard_index].store(HEALTH_DEGRADED, Ordering::Release);
}

/// Records why the most recent recovery attempt for the context's shard
/// failed (`None` clears the slot after a successful recovery).
fn record_recovery_error(ctx: &WriterContext, error: Option<String>) {
    *ctx.recovery_errors[ctx.shard_index]
        .lock()
        .expect("recovery error slot poisoned") = error;
}

/// Supervisor for a failed writer: degrades the shard and hands the queue to
/// a replacement thread. `carryover` is a command that was dequeued but
/// neither journaled nor applied (a journal append failure) — the
/// replacement re-drives it first so no acknowledged mutation is lost.
///
/// Respawns are budgeted and backed off: each respawn beyond the first
/// sleeps exponentially longer before retrying recovery, and once the
/// shard's [`MAX_WRITER_RESPAWNS`] budget is spent the failing writer drains
/// in place permanently — a persistent fault must not spin
/// rebuild → fail → respawn forever. Finished replacement generations are
/// joined here on each respawn, so the registry stays bounded however many
/// times a shard fails.
///
/// The replacement's census guard is created *before* the failing writer's
/// guard drops, so [`live_writer_threads`] never dips below baseline during
/// the handoff.
fn supervise_failure(ctx: &WriterContext, carryover: Option<ShardCommand>) {
    mark_degraded(ctx);
    // ORDERING: Relaxed — only this shard's writer generations touch the
    // counter, and they are sequential (each respawn happens-before its
    // successor via thread spawn); the count gates nothing another thread
    // synchronises on.
    let attempt = ctx.respawn_attempts[ctx.shard_index].fetch_add(1, Ordering::Relaxed);
    if attempt >= MAX_WRITER_RESPAWNS {
        record_recovery_error(
            ctx,
            Some(format!(
                "respawn budget exhausted after {MAX_WRITER_RESPAWNS} writer failures; \
                 shard parked in degraded drain"
            )),
        );
        degraded_drain(ctx);
        return;
    }
    let backoff = Duration::from_millis(
        RESPAWN_BACKOFF_BASE_MS
            .checked_shl(attempt)
            .unwrap_or(u64::MAX)
            .min(RESPAWN_BACKOFF_CAP_MS),
    );
    let replacement_guard = WriterGuard::enter();
    let replacement_ctx = ctx.clone();
    let pin_core = ParallelHiggs::pin_core_for(&ctx.config, ctx.shard_index);
    let handle = std::thread::spawn(move || {
        if let Some(core) = pin_core {
            let _ = higgs_common::affinity::pin_to_core(core);
        }
        if attempt > 0 {
            std::thread::sleep(backoff);
        }
        recover_and_serve(replacement_ctx, carryover, replacement_guard);
    });
    let finished: Vec<JoinHandle<()>> = {
        let mut registry = ctx.respawned.lock().expect("respawn registry poisoned");
        let mut live = Vec::with_capacity(registry.len() + 1);
        let mut finished = Vec::new();
        for h in registry.drain(..) {
            if h.is_finished() {
                finished.push(h);
            } else {
                live.push(h);
            }
        }
        live.push(handle);
        *registry = live;
        finished
    };
    // Joined outside the lock: these generations have already exited, so the
    // joins return immediately.
    for h in finished {
        let _ = h.join();
    }
}

/// Entry point of a respawned writer: rebuild the shard from its durable
/// record (snapshot, if any, plus full journal replay), swap the rebuilt
/// pipeline in, report `Healthy`, and resume serving the same command queue.
/// Without a durable record (or when recovery itself fails) the shard stays
/// degraded and the writer drains commands so nothing blocks on it.
fn recover_and_serve(ctx: WriterContext, carryover: Option<ShardCommand>, guard: WriterGuard) {
    let _guard = guard;
    if let Some(durable) = ctx.durable.clone() {
        match rebuild_shard(&durable, &ctx) {
            Ok((journal, history)) => {
                record_recovery_error(&ctx, None);
                // ORDERING: Release publishes the rebuilt pipeline (already
                // swapped in under the write lock) before readers that
                // Acquire the Healthy flag can route queries here again.
                ctx.health[ctx.shard_index].store(HEALTH_HEALTHY, Ordering::Release);
                writer_loop(ctx, Some(journal), history, carryover);
                return;
            }
            Err(e) => record_recovery_error(&ctx, Some(e.to_string())),
        }
    } else {
        record_recovery_error(
            &ctx,
            Some("no durable record (journaling off): nothing to rebuild from".into()),
        );
    }
    degraded_drain(&ctx);
}

/// Rebuilds one shard's pipeline from snapshot + journal replay and reopens
/// its journal for appending. The rebuilt pipeline replaces the (possibly
/// partially-mutated) live one, so a half-applied batch from the failed
/// writer is wiped and re-applied exactly once via the journal. A failure
/// propagates the typed [`SnapshotError`] (journal errors wrapped as
/// [`SnapshotError::Journal`]) so the caller can record *why* the shard
/// stayed degraded instead of collapsing every cause into silence.
fn rebuild_shard(
    durable: &DurableState,
    ctx: &WriterContext,
) -> Result<(Journal, Option<HistoryLog>), SnapshotError> {
    let mut pipeline = crate::snapshot::load_shard_pipeline(
        &durable.dir,
        ctx.shard_index,
        &ctx.config,
        durable.workers_per_shard,
    )?;
    let covering = crate::snapshot::manifest_tail_checksum(&durable.dir)?;
    let records = crate::journal::replay(&durable.dir, ctx.shard_index, covering)
        .map_err(SnapshotError::Journal)?;
    crate::journal::apply_records(&mut pipeline, records);
    pipeline.flush();
    let journal = Journal::open(&durable.dir, ctx.shard_index, durable.mode, covering)
        .map_err(SnapshotError::Journal)?;
    let history = match durable.history_gen {
        Some(gen) => Some(
            HistoryLog::open(&durable.dir, gen, ctx.shard_index, durable.mode)
                .map_err(SnapshotError::Journal)?,
        ),
        None => None,
    };
    *ctx.shard.write().expect("shard lock poisoned") = pipeline;
    Ok((journal, history))
}

/// Serve loop of a permanently degraded shard: mutations are dropped (there
/// is no recovery source), but flushes are acknowledged, fences answered,
/// and shutdown honoured so no other thread ever blocks on this shard.
fn degraded_drain(ctx: &WriterContext) {
    while let Ok(command) = ctx.rx.recv() {
        match command {
            ShardCommand::Shutdown => break,
            ShardCommand::Flush(ack) => {
                // Vacuously true: every mutation this shard would have
                // applied has been shed.
                let _ = ack.send(());
            }
            ShardCommand::Fence { ready, resume } => {
                let _ = ready.send(());
                // Never truncate a degraded shard's journal: it is the only
                // surviving record of the shard's mutations. (Unreachable
                // through `snapshot_to_dir`, which refuses degraded shards,
                // but the protocol stays total.)
                let _ = resume.recv();
                let _ = ready.send(());
            }
            _ => {}
        }
    }
}

fn writer_loop(
    ctx: WriterContext,
    mut journal: Option<Journal>,
    mut history: Option<HistoryLog>,
    initial: Option<ShardCommand>,
) {
    let mut next = initial;
    'serve: loop {
        let command = match next.take() {
            Some(command) => command,
            None => match ctx.rx.recv() {
                Ok(command) => command,
                Err(_) => break 'serve,
            },
        };
        match command {
            ShardCommand::Shutdown => break 'serve,
            ShardCommand::Fence { ready, resume } => {
                match fence_writer(&ctx, &mut journal, &mut history, ready, resume) {
                    FenceOutcome::Resumed => {}
                    FenceOutcome::RotationFailed => {
                        mark_degraded(&ctx);
                        record_recovery_error(
                            &ctx,
                            Some(
                                "journal rotation failed after a successful snapshot; \
                                 replay would double-apply the rotated records"
                                    .into(),
                            ),
                        );
                        degraded_drain(&ctx);
                        return;
                    }
                    FenceOutcome::FlushPanicked => {
                        // Every fenced mutation was journaled before it was
                        // applied, so a rebuild replays them: no carryover.
                        supervise_failure(&ctx, None);
                        return;
                    }
                }
            }
            command => {
                // ORDERING: Acquire pairs with the Release store in
                // `discard_pending`, so a writer that observes shedding mode
                // also observes everything the shedder did before flipping
                // the flag.
                if ctx.discard.load(Ordering::Acquire) {
                    // Shedding mode: drop the command unapplied (a Flush's
                    // pending acknowledger is dropped with it, which
                    // unblocks the flusher).
                    continue 'serve;
                }
                if let Some(h) = history.as_mut() {
                    if history_command(h, &command).is_err() {
                        // Not recorded, not applied: hand the command to the
                        // replacement so it is re-driven in order. (If the
                        // failure hit after the bytes landed, the re-driven
                        // duplicate is collapsed on read.)
                        supervise_failure(&ctx, Some(command));
                        return;
                    }
                }
                if let Some(j) = journal.as_mut() {
                    if journal_command(j, &command).is_err() {
                        // Not journaled, not applied: hand the command to
                        // the replacement so it is re-driven in order.
                        supervise_failure(&ctx, Some(command));
                        return;
                    }
                }
                let mut pipeline = ctx.shard.write().expect("shard lock poisoned");
                if catch_unwind(AssertUnwindSafe(|| apply(&mut pipeline, command))).is_err() {
                    // Already journaled: recovery replay re-applies it onto
                    // a rebuilt pipeline, so no carryover.
                    drop(pipeline);
                    supervise_failure(&ctx, None);
                    return;
                }
                // Apply whatever else is already queued while we hold the
                // lock, bounded so concurrent readers are not starved.
                for _ in 0..WRITER_COALESCE {
                    match ctx.rx.try_recv() {
                        Ok(ShardCommand::Shutdown) => break 'serve,
                        Ok(fence @ ShardCommand::Fence { .. }) => {
                            // Handle at the loop top, outside the lock.
                            next = Some(fence);
                            break;
                        }
                        Ok(coalesced) => {
                            if let Some(h) = history.as_mut() {
                                if history_command(h, &coalesced).is_err() {
                                    drop(pipeline);
                                    supervise_failure(&ctx, Some(coalesced));
                                    return;
                                }
                            }
                            if let Some(j) = journal.as_mut() {
                                if journal_command(j, &coalesced).is_err() {
                                    drop(pipeline);
                                    supervise_failure(&ctx, Some(coalesced));
                                    return;
                                }
                            }
                            if catch_unwind(AssertUnwindSafe(|| apply(&mut pipeline, coalesced)))
                                .is_err()
                            {
                                drop(pipeline);
                                supervise_failure(&ctx, None);
                                return;
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
        }
    }
    // Either a Shutdown arrived (commands queued behind it are dropped) or
    // every sender is gone and the queue is fully drained.
}

/// One freshly spawned writer fleet: the channel senders, the thread
/// handles, and the supervision state the writers share. Produced by
/// [`spawn_writer_set`]; consumed by service assembly and by the online
/// reshard, which retires one fleet and installs another.
struct WriterSet {
    senders: Vec<Sender<ShardCommand>>,
    writers: Vec<JoinHandle<()>>,
    health: Arc<Vec<AtomicU8>>,
    respawned: Arc<Mutex<Vec<JoinHandle<()>>>>,
    respawn_attempts: Arc<Vec<AtomicU32>>,
    recovery_errors: Arc<Vec<Mutex<Option<String>>>>,
}

/// Spawns one writer thread per shard with an empty queue, arming each with
/// its journal (durable mode) and elastic history log. Fresh supervision
/// state (health board, respawn registry/budget, recovery-error slots) is
/// allocated per fleet — a reshard starts the new fleet with a clean slate.
fn spawn_writer_set(
    config: HiggsConfig,
    shards: &[Arc<RwLock<ParallelHiggs>>],
    durable: Option<Arc<DurableState>>,
    journals: Vec<Option<Journal>>,
    histories: Vec<Option<HistoryLog>>,
    discard: Arc<std::sync::atomic::AtomicBool>,
) -> WriterSet {
    let num_shards = shards.len();
    let mut senders = Vec::with_capacity(num_shards);
    let mut writers = Vec::with_capacity(num_shards);
    let health: Arc<Vec<AtomicU8>> = Arc::new(
        (0..num_shards)
            .map(|_| AtomicU8::new(HEALTH_HEALTHY))
            .collect(),
    );
    let respawned: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let respawn_attempts: Arc<Vec<AtomicU32>> =
        Arc::new((0..num_shards).map(|_| AtomicU32::new(0)).collect());
    let recovery_errors: Arc<Vec<Mutex<Option<String>>>> =
        Arc::new((0..num_shards).map(|_| Mutex::new(None)).collect());
    for (shard_index, ((shard, journal), history)) in
        shards.iter().zip(journals).zip(histories).enumerate()
    {
        let (tx, rx) = match config.ingest_queue_cap {
            Some(cap) => bounded::<ShardCommand>(cap),
            None => unbounded::<ShardCommand>(),
        };
        let ctx = WriterContext {
            shard_index,
            config,
            shard: shard.clone(),
            rx,
            discard: discard.clone(),
            health: health.clone(),
            durable: durable.clone(),
            respawned: respawned.clone(),
            respawn_attempts: respawn_attempts.clone(),
            recovery_errors: recovery_errors.clone(),
        };
        let guard = WriterGuard::enter();
        // Same core as this shard's aggregation workers (None when
        // pinning is off); pinning is best-effort.
        let pin_core = ParallelHiggs::pin_core_for(&config, shard_index);
        writers.push(std::thread::spawn(move || {
            let _guard = guard;
            if let Some(core) = pin_core {
                let _ = higgs_common::affinity::pin_to_core(core);
            }
            writer_loop(ctx, journal, history, None)
        }));
        senders.push(tx);
    }
    WriterSet {
        senders,
        writers,
        health,
        respawned,
        respawn_attempts,
        recovery_errors,
    }
}

impl ShardedHiggs {
    /// Creates a sharded service with `config.shards` shards, one writer
    /// thread per shard, and one aggregation worker per shard pipeline.
    ///
    /// Panics on an invalid configuration; use [`Self::try_new`] for
    /// fallible construction.
    pub fn new(config: HiggsConfig) -> Self {
        Self::try_new(config).expect("invalid HiggsConfig")
    }

    /// Creates a sharded service, returning the violated constraint instead
    /// of panicking when the configuration is invalid.
    pub fn try_new(config: HiggsConfig) -> Result<Self, ConfigError> {
        Self::try_with_workers(config, 1)
    }

    /// Creates a sharded service with `workers_per_shard` aggregation
    /// workers behind each shard's writer.
    ///
    /// When [`HiggsConfig::pin_workers`] is set, shard `s`'s whole thread
    /// group — its writer plus its aggregation workers — pins to core
    /// `s % available_cores`, keeping each shard's slabs resident in one
    /// core's private cache.
    pub fn try_with_workers(
        config: HiggsConfig,
        workers_per_shard: usize,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let pipelines = (0..config.shards)
            .map(|s| {
                ParallelHiggs::new_on_core(
                    config,
                    workers_per_shard,
                    ParallelHiggs::pin_core_for(&config, s),
                )
            })
            .collect();
        Self::from_pipelines(config, pipelines)
    }

    /// Creates a **durable** sharded service: every mutation is appended to
    /// a per-shard write-ahead journal in `dir` before it is applied, per
    /// the configured [`JournalMode`]
    /// ([`HiggsConfigBuilder::journal_mode`](crate::HiggsConfigBuilder::journal_mode)).
    ///
    /// `dir` is created if missing. When it already holds a snapshot
    /// (written by [`snapshot_to_dir`](Self::snapshot_to_dir)) and/or
    /// journals from an earlier — possibly crashed — instance, the service
    /// recovers: pipelines are restored from the snapshot, each shard's
    /// journal tail is replayed on top (tolerating a torn final record), and
    /// journaling resumes in append mode. The caller's `config` stays
    /// authoritative for runtime behaviour but must agree with a recovered
    /// snapshot on the shard count (journals are per-shard).
    ///
    /// With [`JournalMode::Off`] this behaves like [`try_new`](Self::try_new)
    /// plus recovery: existing state in `dir` is loaded, but no journal is
    /// written.
    #[deprecated(
        since = "0.1.0",
        note = "use `Store::open(StoreOptions::durable(config, dir))`"
    )]
    pub fn new_durable(config: HiggsConfig, dir: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        crate::store::Store::open(crate::store::StoreOptions::durable(config, dir))
    }

    /// [`new_durable`](Self::new_durable) with `workers_per_shard`
    /// aggregation workers behind each shard's writer.
    #[deprecated(
        since = "0.1.0",
        note = "use `Store::open(StoreOptions::durable(config, dir).workers(n))`"
    )]
    pub fn new_durable_with_workers(
        config: HiggsConfig,
        dir: impl AsRef<Path>,
        workers_per_shard: usize,
    ) -> Result<Self, SnapshotError> {
        crate::store::Store::open(
            crate::store::StoreOptions::durable(config, dir).workers(workers_per_shard),
        )
    }

    /// Assembles a non-durable service around pre-built per-shard pipelines
    /// (fresh ones for [`try_with_workers`], restored ones for snapshot
    /// restore).
    pub(crate) fn from_pipelines(
        config: HiggsConfig,
        pipelines: Vec<ParallelHiggs>,
    ) -> Result<Self, ConfigError> {
        let n = pipelines.len();
        Self::from_pipelines_with(
            config,
            pipelines,
            None,
            (0..n).map(|_| None).collect(),
            (0..n).map(|_| None).collect(),
        )
    }

    /// Assembles a service around pre-built pipelines, arming each shard's
    /// writer with its journal (durable mode) and elastic history log.
    pub(crate) fn from_pipelines_with(
        config: HiggsConfig,
        pipelines: Vec<ParallelHiggs>,
        durable: Option<Arc<DurableState>>,
        journals: Vec<Option<Journal>>,
        histories: Vec<Option<HistoryLog>>,
    ) -> Result<Self, ConfigError> {
        let shards: Vec<Arc<RwLock<ParallelHiggs>>> = pipelines
            .into_iter()
            .map(|p| Arc::new(RwLock::new(p)))
            .collect();
        Self::from_arc_pipelines_with(config, shards, durable, journals, histories)
    }

    /// Assembles a non-durable service around **shared** pipelines — the
    /// promotion path of a [`Follower`](crate::Follower), whose pipelines
    /// are already Arc-wrapped from the replica apply loop.
    pub(crate) fn from_arc_pipelines(
        config: HiggsConfig,
        shards: Vec<Arc<RwLock<ParallelHiggs>>>,
    ) -> Result<Self, ConfigError> {
        let n = shards.len();
        Self::from_arc_pipelines_with(
            config,
            shards,
            None,
            (0..n).map(|_| None).collect(),
            (0..n).map(|_| None).collect(),
        )
    }

    /// Shared assembly core: spawns one writer thread per shard with an
    /// empty queue.
    pub(crate) fn from_arc_pipelines_with(
        config: HiggsConfig,
        shards: Vec<Arc<RwLock<ParallelHiggs>>>,
        durable: Option<Arc<DurableState>>,
        journals: Vec<Option<Journal>>,
        histories: Vec<Option<HistoryLog>>,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if shards.len() != config.shards {
            return Err(ConfigError::InvalidShardCount {
                shards: shards.len(),
            });
        }
        let discard = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let set = spawn_writer_set(
            config,
            &shards,
            durable.clone(),
            journals,
            histories,
            discard.clone(),
        );
        Ok(Self {
            shards,
            handle: IngestHandle {
                router: Arc::new(RwLock::new(set.senders)),
                clock: Arc::new(FlushClock::default()),
                discard: discard.clone(),
                seq: Arc::new(AtomicU64::new(0)),
            },
            writers: set.writers,
            discard,
            health: set.health,
            respawned: set.respawned,
            respawn_attempts: set.respawn_attempts,
            recovery_errors: set.recovery_errors,
            durable,
            config,
        })
    }

    /// The per-shard pipelines (crate-internal; the snapshot codec reads
    /// each shard's summary under its lock).
    pub(crate) fn shard_pipelines(&self) -> &[Arc<RwLock<ParallelHiggs>>] {
        &self.shards
    }

    /// Per-shard writer health (diagnostic). A `Degraded` entry means the
    /// shard's writer failed and was not (or could not be) recovered yet;
    /// the serving layer fails queries routed at such shards fast with
    /// `ServiceError::ShardUnavailable` instead of letting them hang. See
    /// [`ShardHealth`] for how shards degrade and recover.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.health
            .iter()
            .map(|h| {
                // ORDERING: Acquire pairs with the Release stores in
                // `mark_degraded` / `recover_and_serve`: observing a health
                // transition also observes the pipeline state it published.
                if h.load(Ordering::Acquire) == HEALTH_DEGRADED {
                    ShardHealth::Degraded
                } else {
                    ShardHealth::Healthy
                }
            })
            .collect()
    }

    /// Per-shard record of why the most recent writer recovery attempt
    /// failed (diagnostic). `None` for a shard that is healthy or never
    /// failed; `Some(reason)` distinguishes journal corruption from
    /// transient I/O, a missing manifest, an exhausted respawn budget, or a
    /// failed rotation — so a persistently `Degraded` shard is explainable
    /// instead of silent. Cleared when a recovery succeeds.
    pub fn shard_recovery_errors(&self) -> Vec<Option<String>> {
        self.recovery_errors
            .iter()
            .map(|slot| slot.lock().expect("recovery error slot poisoned").clone())
            .collect()
    }

    /// Per-shard count of writer respawns since construction (diagnostic).
    /// Once a shard's count passes [`MAX_WRITER_RESPAWNS`] it stays
    /// `Degraded` permanently; see
    /// [`shard_recovery_errors`](Self::shard_recovery_errors) for the
    /// recorded reason.
    pub fn shard_respawn_counts(&self) -> Vec<u32> {
        self.respawn_attempts
            .iter()
            // ORDERING: Relaxed — a monotone diagnostic counter; readers
            // need no ordering with the writer state it counts.
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Index of the first degraded shard, if any (crate-internal shorthand
    /// for the snapshot and serving layers).
    pub(crate) fn first_degraded_shard(&self) -> Option<usize> {
        self.shard_health()
            .iter()
            .position(|h| *h == ShardHealth::Degraded)
    }

    /// A shared read view of the health board for the serving layer.
    pub(crate) fn health_board(&self) -> HealthBoard {
        HealthBoard {
            slots: self.health.clone(),
        }
    }

    /// Shared supervision state (respawn counters + recovery-error slots)
    /// for the serving layer's [`health`](crate::ServiceClient::health)
    /// report: clients hold the `Arc`s directly so the report stays
    /// readable after the service drops.
    #[allow(clippy::type_complexity)]
    pub(crate) fn supervision_state(
        &self,
    ) -> (Arc<Vec<AtomicU32>>, Arc<Vec<Mutex<Option<String>>>>) {
        (self.respawn_attempts.clone(), self.recovery_errors.clone())
    }

    /// The journal directory when this service is durable.
    pub(crate) fn durable_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// Parks every writer at a snapshot fence and returns once all have
    /// acknowledged: each writer has flushed its pipeline, synced its
    /// journal, and blocks until [`WriterFence::release`] delivers the
    /// snapshot verdict. Used by `snapshot_to_dir` to make journal rotation
    /// atomic with the snapshot (see the `journal` module docs).
    pub(crate) fn fence_writers(&self) -> WriterFence {
        fence_writers_on(&self.handle.senders())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configuration this service was built (or restored) with — handy
    /// for wrapping a restored or durable service in a
    /// [`HiggsService`](crate::HiggsService) without re-threading the config
    /// through the call site.
    pub fn config(&self) -> &HiggsConfig {
        &self.config
    }

    /// A cloneable ingest endpoint usable from other threads while this
    /// summary concurrently serves queries.
    pub fn ingest_handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// Blocks until every mutation enqueued so far (through the trait
    /// surface or any [`IngestHandle`]) is applied and aggregated.
    pub fn flush(&self) {
        self.handle.flush();
    }

    fn read_shard(&self, shard: usize) -> RwLockReadGuard<'_, ParallelHiggs> {
        self.shards[shard].read().expect("shard lock poisoned")
    }

    /// Total number of stream items currently held (inserted minus deleted),
    /// after making enqueued mutations visible.
    pub fn total_items(&self) -> u64 {
        self.handle.ensure_visible();
        self.shards
            .iter()
            .enumerate()
            .map(|(s, _)| self.read_shard(s).summary().total_items())
            .sum()
    }

    /// Number of query plans (Algorithm-3 boundary searches) built across
    /// all shards. The per-shard plan-sharing executor guarantees a batch
    /// adds at most `distinct ranges × shards touched` to this counter.
    pub fn plans_built(&self) -> u64 {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, _)| self.read_shard(s).summary().plans_built())
            .sum()
    }

    /// Resets the plan counter on every shard (diagnostic hook).
    pub fn reset_plan_count(&self) {
        for s in 0..self.shards.len() {
            self.read_shard(s).summary().reset_plan_count();
        }
    }

    /// Switches the service into load-shedding teardown: every mutation
    /// still queued (and any enqueued afterwards) is dropped unapplied, so a
    /// subsequent drop terminates without working off the backlog.
    ///
    /// This exists for benchmarks and tests that measure the ingest-path
    /// (enqueue) cost in isolation and then abandon the instance, and for
    /// emergency shedding; it is irreversible and leaves query results
    /// reflecting only the mutations applied before the call.
    pub fn discard_pending(&self) {
        // ORDERING: Release pairs with the writers' Acquire load of the
        // flag (see the serve loop), publishing the caller's state before
        // shedding becomes observable.
        self.discard.store(true, Ordering::Release);
    }

    /// Per-shard leaf counts (diagnostic: shows how evenly the stream's
    /// sources spread over the shards).
    pub fn shard_leaf_counts(&self) -> Vec<usize> {
        self.handle.ensure_visible();
        (0..self.shards.len())
            .map(|s| self.read_shard(s).summary().leaf_count())
            .collect()
    }

    /// Resumes the global mutation sequence counter at `next`
    /// (construction-time, when an elastic directory already holds stamped
    /// history: new mutations must stamp above everything on disk).
    pub(crate) fn resume_seq(&self, next: u64) {
        // ORDERING: Relaxed — called before any producer thread exists; the
        // handle that carries the counter has not been cloned out yet.
        self.handle.seq.store(next, Ordering::Relaxed);
    }

    /// **Online reshard**: changes the shard count of a live elastic service
    /// to `new_shards` without dropping an acknowledged mutation.
    ///
    /// The protocol, in order:
    ///
    /// 1. New sends are blocked (the ingest router's write lock); commands
    ///    already queued are FIFO-ahead of the fence and therefore included.
    /// 2. Every writer parks at the snapshot fence: pipelines flushed,
    ///    journals and history logs synced.
    /// 3. The full mutation history is re-read and folded through
    ///    [`shard_of`] at the new width into fresh pipelines.
    /// 4. A snapshot of the folded pipelines is committed (manifest written
    ///    last) — this is the atomic commit point. A crash before it leaves
    ///    the old layout intact; a crash after it recovers at the new width.
    /// 5. The old writer fleet is released and retired; a new fleet opens
    ///    journals stamped with the new manifest and history logs at the
    ///    next generation, and the router swaps to the new senders.
    ///
    /// Surviving [`IngestHandle`] clones keep working across the swap — the
    /// sequence counter and flush clock carry over, only the routing table
    /// changes. On a **pre-commit** failure the service resumes unchanged
    /// (the error is returned, nothing was retired). On a **post-commit**
    /// failure (the new fleet could not be armed) every shard is marked
    /// degraded and the service must be reopened from the directory, which
    /// recovers at the new width.
    ///
    /// Requires elastic history
    /// ([`StoreOptions::elastic`](crate::StoreOptions::elastic)); fails with
    /// [`ReshardError::HistoryUnavailable`] otherwise, and
    /// [`ReshardError::Degraded`] when any shard is degraded (its
    /// unrecovered mutations may be missing from history).
    pub fn reshard(&mut self, new_shards: usize) -> Result<(), ReshardError> {
        if new_shards == 0 || new_shards > MAX_SHARDS {
            return Err(ReshardError::InvalidShardCount {
                requested: new_shards,
            });
        }
        let durable = self
            .durable
            .clone()
            .ok_or_else(|| ReshardError::HistoryUnavailable {
                detail: "service is not durable (journaling off): no elastic history to refold"
                    .into(),
            })?;
        let old_gen = durable
            .history_gen
            .ok_or_else(|| ReshardError::HistoryUnavailable {
                detail: "service was opened without elastic history (StoreOptions::elastic)".into(),
            })?;
        if let Some(shard) = self.first_degraded_shard() {
            return Err(ReshardError::Degraded { shard });
        }
        let old_n = self.shards.len();
        // 1. Block new sends for the duration of the swap. Local clone of the
        // router Arc so the guard does not borrow `self`.
        let router = self.handle.router.clone();
        let mut senders_guard = router.write().expect("router lock poisoned");
        // 2. Fence the fleet: by the first ready ack every writer has
        // recorded and applied everything acknowledged before the lock.
        let fence = fence_writers_on(&senders_guard);
        // A writer may have failed between the pre-check and the fence.
        if let Some(shard) = self.first_degraded_shard() {
            fence.release(None);
            return Err(ReshardError::Degraded { shard });
        }
        // 3.–4. Fold history at the new width and commit the snapshot. Any
        // failure in here is pre-commit: release the fence and resume
        // unchanged. (The interrupted `write_snapshot_files` never wrote the
        // manifest, so recovery still sees the old layout.)
        let mut new_config = self.config;
        new_config.shards = new_shards;
        let folded = crate::history::read_history(&durable.dir)
            .map_err(ReshardError::from)
            .and_then(|ops| {
                let pipelines = fold_history(&ops, &new_config, durable.workers_per_shard);
                let shards: Vec<Arc<RwLock<ParallelHiggs>>> = pipelines
                    .into_iter()
                    .map(|p| Arc::new(RwLock::new(p)))
                    .collect();
                crate::snapshot::write_snapshot_files(&durable.dir, &shards)
                    .map_err(ReshardError::Snapshot)?;
                Ok(shards)
            });
        let new_pipelines = match folded {
            Ok(shards) => shards,
            Err(e) => {
                fence.release(None);
                return Err(e);
            }
        };
        // 5. Release with "keep the journals": the retiring writers must not
        // rotate against the new manifest. The journals are reset instead
        // when reopened below — `Journal::open` treats a stamp that does not
        // match the covering manifest as stale and truncates, the exact
        // crash-window path recovery already exercises.
        fence.release(None);
        for sender in senders_guard.iter() {
            let _ = sender.send(ShardCommand::Shutdown);
        }
        senders_guard.clear();
        for writer in self.writers.drain(..) {
            let _ = writer.join();
        }
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut registry = self.respawned.lock().expect("respawn registry poisoned");
                registry.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for writer in drained {
                let _ = writer.join();
            }
        }
        // Arm the new fleet. Failures from here on are post-commit: the
        // directory has already moved to the new width, so the live service
        // cannot roll back — park it degraded and let a reopen recover.
        type ArmedPersistence = (Vec<Option<Journal>>, Vec<Option<HistoryLog>>);
        let armed = (|| -> Result<ArmedPersistence, ReshardError> {
            let covering = crate::snapshot::manifest_tail_checksum(&durable.dir)
                .map_err(ReshardError::Snapshot)?;
            let journals = (0..new_shards)
                .map(|s| {
                    Journal::open(&durable.dir, s, durable.mode, covering)
                        .map(Some)
                        .map_err(ReshardError::from)
                })
                .collect::<Result<Vec<_>, _>>()?;
            let histories = (0..new_shards)
                .map(|s| {
                    HistoryLog::open(&durable.dir, old_gen + 1, s, durable.mode)
                        .map(Some)
                        .map_err(ReshardError::from)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok((journals, histories))
        })();
        let (journals, histories) = match armed {
            Ok(v) => v,
            Err(e) => {
                for slot in self.health.iter() {
                    // ORDERING: Release — pairs with the Acquire loads in
                    // `shard_health`; see `mark_degraded`.
                    slot.store(HEALTH_DEGRADED, Ordering::Release);
                }
                return Err(e);
            }
        };
        // Shrinking: journals for retired shard slots are superseded by the
        // committed snapshot; remove them so a later reopen at the new width
        // does not trip over stale stamps. Best-effort — a stale file left
        // behind is reset by `Journal::open` if the count ever grows again.
        for s in new_shards..old_n {
            let _ = std::fs::remove_file(durable.dir.join(crate::journal::journal_file_name(s)));
        }
        let new_durable = Arc::new(DurableState {
            dir: durable.dir.clone(),
            mode: durable.mode,
            workers_per_shard: durable.workers_per_shard,
            history_gen: Some(old_gen + 1),
        });
        let set = spawn_writer_set(
            new_config,
            &new_pipelines,
            Some(new_durable.clone()),
            journals,
            histories,
            self.discard.clone(),
        );
        *senders_guard = set.senders;
        self.shards = new_pipelines;
        self.writers = set.writers;
        self.health = set.health;
        self.respawned = set.respawned;
        self.respawn_attempts = set.respawn_attempts;
        self.recovery_errors = set.recovery_errors;
        self.durable = Some(new_durable);
        self.config = new_config;
        drop(senders_guard);
        Ok(())
    }
}

/// Parks the given writer fleet at a fence (see
/// [`ShardedHiggs::fence_writers`], which fences the live fleet through the
/// router's read lock). The online reshard calls this directly with the
/// senders it already holds under the router's **write** lock — taking the
/// read-locking method there would self-deadlock.
fn fence_writers_on(senders: &[Sender<ShardCommand>]) -> WriterFence {
    let (ready_tx, ready_rx) = unbounded::<()>();
    let mut resume_txs = Vec::with_capacity(senders.len());
    let mut expected = 0usize;
    for sender in senders {
        let (resume_tx, resume_rx) = bounded::<Option<u64>>(1);
        if sender
            .send(ShardCommand::Fence {
                ready: ready_tx.clone(),
                resume: resume_rx,
            })
            .is_ok()
        {
            expected += 1;
            resume_txs.push(resume_tx);
        }
    }
    drop(ready_tx);
    for _ in 0..expected {
        if ready_rx.recv().is_err() {
            break; // a writer exited; it cannot hold a lock either
        }
    }
    WriterFence {
        resume_txs,
        ready_rx,
        expected,
        released: false,
    }
}

/// RAII handle over writers parked at a snapshot fence (see
/// [`ShardedHiggs::fence_writers`]). Dropping without
/// [`release`](Self::release) resumes the writers with a `false` verdict
/// (journals kept), so an early-error path in the snapshot code can never
/// leave writers parked forever.
pub(crate) struct WriterFence {
    resume_txs: Vec<Sender<Option<u64>>>,
    ready_rx: Receiver<()>,
    expected: usize,
    released: bool,
}

impl WriterFence {
    /// Resumes every fenced writer and blocks until each has acted on the
    /// verdict. `Some(checksum)` reports a successful snapshot: each shard's
    /// journal is truncated and stamped with the new manifest's checksum
    /// before this returns. `None` keeps every journal intact.
    pub(crate) fn release(mut self, covering: Option<u64>) {
        for tx in &self.resume_txs {
            let _ = tx.send(covering);
        }
        // Synchronous rotation: wait for every writer's completion ack. A
        // writer that died mid-fence drops its sender, which surfaces here
        // as a disconnect once the live acks are drained — never a hang.
        for _ in 0..self.expected {
            if self.ready_rx.recv().is_err() {
                break;
            }
        }
        self.released = true;
    }
}

impl Drop for WriterFence {
    fn drop(&mut self) {
        if !self.released {
            // Resume with "keep the journals" and do not wait: this is the
            // early-error path; writers unpark on their own.
            for tx in &self.resume_txs {
                let _ = tx.send(None);
            }
        }
    }
}

impl Drop for ShardedHiggs {
    fn drop(&mut self) {
        // A Shutdown marker (FIFO: behind everything this service enqueued)
        // ends each writer loop even when surviving IngestHandle clones keep
        // the channels open — relying on channel disconnection alone would
        // deadlock the join below in that case. Dropping the last shard
        // reference then joins its aggregation workers.
        {
            let mut senders = self.handle.router.write().expect("router lock poisoned");
            for sender in senders.iter() {
                let _ = sender.send(ShardCommand::Shutdown);
            }
            senders.clear();
        }
        for writer in self.writers.drain(..) {
            let _ = writer.join();
        }
        // Respawned recovery writers consume the same queues, so the
        // Shutdown markers end them too; a respawning writer registers its
        // replacement before exiting, so once a generation is joined any
        // successor is already visible here.
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut registry = self.respawned.lock().expect("respawn registry poisoned");
                registry.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for writer in drained {
                let _ = writer.join();
            }
        }
    }
}

impl TemporalGraphSummary for ShardedHiggs {
    fn insert(&mut self, edge: &StreamEdge) {
        // Writers cannot be gone while `self` is alive; the only possible
        // error is Rejected after `discard_pending`, where dropping the
        // mutation is exactly the contract.
        let _ = self.handle.insert(edge);
    }

    fn insert_all(&mut self, edges: &[StreamEdge]) {
        let _ = self.handle.insert_all(edges);
    }

    fn delete(&mut self, edge: &StreamEdge) {
        let _ = self.handle.delete(edge);
    }

    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        self.handle.ensure_visible();
        self.read_shard(shard_of(src, self.shards.len()))
            .edge_query(src, dst, range)
    }

    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        self.handle.ensure_visible();
        match direction {
            VertexDirection::Out => self
                .read_shard(shard_of(vertex, self.shards.len()))
                .vertex_query(vertex, direction, range),
            VertexDirection::In => (0..self.shards.len())
                .map(|s| self.read_shard(s).vertex_query(vertex, direction, range))
                .sum(),
        }
    }

    fn query(&self, query: &Query) -> Weight {
        self.query_batch(std::slice::from_ref(query))[0]
    }

    fn query_batch(&self, queries: &[Query]) -> Vec<Weight> {
        self.handle.ensure_visible();
        let plan = ShardPlan::build(queries, self.shards.len());
        // One read lock per shard, taken and released sequentially; each
        // shard runs its sub-batch through the plan-sharing executor, so the
        // whole batch costs at most one boundary search per distinct range
        // per shard.
        let per_shard: Vec<Vec<Weight>> = (0..self.shards.len())
            .map(|s| {
                let sub = plan.sub_batch(s);
                if sub.is_empty() {
                    Vec::new()
                } else {
                    self.read_shard(s).query_batch(sub)
                }
            })
            .collect();
        plan.gather(&per_shard)
    }

    fn space_bytes(&self) -> usize {
        self.handle.ensure_visible();
        (0..self.shards.len())
            .map(|s| self.read_shard(s).space_bytes())
            .sum()
    }

    fn name(&self) -> &'static str {
        "HIGGS-sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreOptions};
    use crate::tree::HiggsSummary;
    use higgs_common::QueryBatch;

    fn config(shards: usize) -> HiggsConfig {
        HiggsConfig::builder()
            .shards(shards)
            .build()
            .expect("valid test configuration")
    }

    fn edges(n: u64) -> Vec<StreamEdge> {
        (0..n)
            .map(|i| StreamEdge::new(i % 200, (i * 13) % 200, 1 + i % 4, i / 2))
            .collect()
    }

    fn mixed_batch(span: u64) -> Vec<Query> {
        let a = TimeRange::new(0, span / 2);
        let b = TimeRange::new(span / 4, span);
        vec![
            Query::edge(1, 13, a),
            Query::edge(5, 65, b),
            Query::vertex(7, VertexDirection::Out, a),
            Query::vertex(7, VertexDirection::In, a),
            Query::vertex(91, VertexDirection::In, b),
            Query::path(vec![1, 13, 169, 197], a),
            Query::subgraph(vec![(2, 26), (3, 39), (4, 52)], b),
        ]
    }

    #[test]
    fn sharded_matches_single_summary_on_all_query_kinds() {
        let stream = edges(5_000);
        let mut single = HiggsSummary::new(config(1));
        single.insert_all(&stream);
        for shards in [1usize, 2, 3, 4, 8] {
            let mut sharded = ShardedHiggs::new(config(shards));
            sharded.insert_all(&stream);
            let batch = mixed_batch(2_500);
            assert_eq!(
                sharded.query_batch(&batch),
                single.query_batch(&batch),
                "{shards} shards diverged on the batch surface"
            );
            for q in &batch {
                assert_eq!(sharded.query(q), single.query(q), "{shards} shards, {q:?}");
            }
            assert_eq!(sharded.total_items(), single.total_items());
        }
    }

    #[test]
    fn per_edge_trait_insert_matches_batched_ingest() {
        let stream = edges(2_000);
        let mut a = ShardedHiggs::new(config(4));
        let mut b = ShardedHiggs::new(config(4));
        for e in &stream {
            a.insert(e);
        }
        b.insert_all(&stream);
        let batch = mixed_batch(1_000);
        assert_eq!(a.query_batch(&batch), b.query_batch(&batch));
        assert_eq!(a.total_items(), b.total_items());
    }

    #[test]
    fn deletes_route_to_the_inserting_shard() {
        let stream = edges(3_000);
        let mut single = HiggsSummary::new(config(1));
        let mut sharded = ShardedHiggs::new(config(4));
        single.insert_all(&stream);
        sharded.insert_all(&stream);
        for e in stream.iter().step_by(7) {
            single.delete(e);
            sharded.delete(e);
        }
        let batch = mixed_batch(1_500);
        assert_eq!(sharded.query_batch(&batch), single.query_batch(&batch));
        assert_eq!(sharded.total_items(), single.total_items());
    }

    #[test]
    fn queries_are_read_your_writes_without_explicit_flush() {
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert(&StreamEdge::new(1, 2, 5, 10));
        // No flush: the very next query must already see the edge.
        assert_eq!(sharded.edge_query(1, 2, TimeRange::all()), 5);
        sharded.insert(&StreamEdge::new(1, 2, 3, 11));
        assert_eq!(
            sharded.vertex_query(1, VertexDirection::Out, TimeRange::all()),
            8
        );
        assert_eq!(
            sharded.vertex_query(2, VertexDirection::In, TimeRange::all()),
            8
        );
    }

    #[test]
    fn batch_costs_at_most_one_plan_per_range_per_shard() {
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert_all(&edges(4_000));
        let batch: QueryBatch = mixed_batch(2_000).into_iter().collect();
        sharded.flush();
        sharded.reset_plan_count();
        let _ = sharded.query_batch(batch.queries());
        let plans = sharded.plans_built();
        assert!(
            plans <= (batch.distinct_ranges() * sharded.num_shards()) as u64,
            "{plans} plans for {} ranges over {} shards",
            batch.distinct_ranges(),
            sharded.num_shards()
        );
        assert!(plans > 0);
    }

    #[test]
    fn ingest_handle_feeds_queries_from_another_thread() {
        let sharded = ShardedHiggs::new(config(2));
        let handle = sharded.ingest_handle();
        let stream = edges(2_000);
        let ingest_stream = stream.clone();
        std::thread::scope(|scope| {
            let producer = scope.spawn(move || {
                for e in &ingest_stream {
                    assert!(handle.insert(e).is_ok());
                }
            });
            // Concurrent reads are allowed mid-ingest (they observe a prefix).
            let _ = sharded.edge_query(0, 0, TimeRange::all());
            producer.join().expect("producer panicked");
        });
        sharded.flush();
        let mut single = HiggsSummary::new(config(1));
        single.insert_all(&stream);
        let batch = mixed_batch(1_000);
        assert_eq!(sharded.query_batch(&batch), single.query_batch(&batch));
    }

    #[test]
    fn stream_spreads_over_shards() {
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert_all(&edges(8_000));
        let leaves = sharded.shard_leaf_counts();
        assert_eq!(leaves.len(), 4);
        assert!(
            leaves.iter().all(|&l| l > 0),
            "every shard must own part of the stream: {leaves:?}"
        );
    }

    #[test]
    fn flush_is_idempotent_and_drop_mid_stream_terminates() {
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert_all(&edges(4_000));
        sharded.flush();
        sharded.flush();
        assert_eq!(sharded.total_items(), 4_000);
        // Drop with freshly enqueued, unflushed work: must terminate.
        sharded.insert_all(&edges(2_000));
    }

    #[test]
    fn drop_terminates_while_an_ingest_handle_clone_is_still_alive() {
        // Regression test: a surviving IngestHandle keeps the command
        // channels open, so teardown must not rely on channel disconnection
        // to stop the writers — the Shutdown marker has to end them, and
        // later sends on the orphaned handle must fail gracefully.
        let mut sharded = ShardedHiggs::new(config(2));
        sharded.insert(&StreamEdge::new(1, 2, 5, 1));
        let handle = sharded.ingest_handle();
        drop(sharded); // must join writers despite `handle` being alive
        assert_eq!(
            handle.insert(&StreamEdge::new(3, 4, 1, 2)),
            Err(IngestError::Shutdown),
            "sends on a shut-down service must report the typed failure"
        );
        assert_eq!(
            handle.delete(&StreamEdge::new(3, 4, 1, 2)),
            Err(IngestError::Shutdown)
        );
        assert_eq!(
            handle.insert_all(&edges(600)),
            Err(IngestError::Shutdown),
            "bulk routing must stop at the first dead shard"
        );
        assert_eq!(
            handle.try_insert(&StreamEdge::new(3, 4, 1, 2)),
            Err(IngestError::Shutdown)
        );
        handle.flush(); // must not hang either
    }

    #[test]
    fn discard_pending_sheds_backlog_and_still_terminates() {
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert(&StreamEdge::new(1, 2, 5, 1));
        sharded.flush();
        sharded.discard_pending();
        sharded.insert_all(&edges(2_000)); // shed, never applied
        sharded.flush(); // must not hang: discarded flushes unblock by drop
        assert_eq!(sharded.edge_query(1, 2, TimeRange::all()), 5);
        // The fallible handle surface reports shedding as a typed rejection
        // instead of silently dropping.
        let handle = sharded.ingest_handle();
        let e = StreamEdge::new(9, 9, 1, 9);
        assert_eq!(handle.insert(&e), Err(IngestError::Rejected));
        assert_eq!(handle.try_insert(&e), Err(IngestError::Rejected));
        assert_eq!(handle.delete(&e), Err(IngestError::Rejected));
        assert_eq!(handle.try_delete(&e), Err(IngestError::Rejected));
        assert_eq!(handle.insert_all(&edges(10)), Err(IngestError::Rejected));
        // Drop must terminate without working off the discarded backlog.
    }

    #[test]
    fn try_insert_reports_queue_full_under_a_stalled_writer() {
        let bounded_config = HiggsConfig::builder()
            .shards(1)
            .ingest_queue_cap(1)
            .build()
            .expect("valid bounded configuration");
        let sharded = ShardedHiggs::new(bounded_config);
        let handle = sharded.ingest_handle();
        let e = StreamEdge::new(1, 2, 1, 1);
        // Stall the single shard's writer by holding its write lock: the
        // writer can dequeue at most one in-flight command before blocking
        // on the lock, so the 1-slot queue must fill within a few sends.
        let stall = sharded.shards[0].write().expect("shard lock poisoned");
        let mut accepted = 0usize;
        let mut saw_full = false;
        for _ in 0..64 {
            match handle.try_insert(&e) {
                Ok(()) => accepted += 1,
                Err(IngestError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(other) => panic!("unexpected ingest error: {other}"),
            }
        }
        assert!(saw_full, "a stalled 1-slot queue must report QueueFull");
        assert!(accepted >= 1, "the free slot must accept a send first");
        drop(stall);
        // Backpressure is transient: once the writer drains, sends succeed
        // again and everything accepted lands.
        handle.flush();
        assert!(handle.try_insert(&e).is_ok());
        sharded.flush();
        assert_eq!(sharded.total_items(), accepted as u64 + 1);
        // try_delete shares the same non-blocking path; on the drained
        // queue it must enqueue rather than report backpressure.
        assert_eq!(handle.try_delete(&e), Ok(()));
    }

    fn durable_config(shards: usize, mode: JournalMode) -> HiggsConfig {
        HiggsConfig::builder()
            .shards(shards)
            .journal_mode(mode)
            .build()
            .expect("valid durable test configuration")
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "higgs-shard-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn every_shard_starts_healthy() {
        let sharded = ShardedHiggs::new(config(4));
        assert_eq!(sharded.shard_health(), vec![ShardHealth::Healthy; 4]);
        assert!(sharded.first_degraded_shard().is_none());
        assert!(
            sharded.durable_dir().is_none(),
            "plain services never journal"
        );
    }

    #[test]
    fn durable_service_replays_its_journal_after_an_unclean_stop() {
        let dir = temp_dir("replay");
        let stream = edges(2_000);
        let cfg = durable_config(3, JournalMode::Buffered);
        {
            let mut sharded =
                Store::open(StoreOptions::durable(cfg, &dir)).expect("durable service");
            assert_eq!(sharded.durable_dir(), Some(dir.as_path()));
            sharded.insert_all(&stream);
            for e in stream.iter().step_by(9) {
                sharded.delete(e);
            }
            sharded.flush();
            // Drop without ever snapshotting: the journal is the only record.
        }
        let recovered = Store::open(StoreOptions::durable(cfg, &dir)).expect("recovery");
        let mut control = HiggsSummary::new(config(1));
        control.insert_all(&stream);
        for e in stream.iter().step_by(9) {
            control.delete(e);
        }
        let batch = mixed_batch(1_000);
        assert_eq!(recovered.query_batch(&batch), control.query_batch(&batch));
        assert_eq!(recovered.total_items(), control.total_items());
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_mode_off_keeps_the_directory_empty_of_journals() {
        let dir = temp_dir("off");
        let cfg = durable_config(2, JournalMode::Off);
        {
            let mut sharded =
                Store::open(StoreOptions::durable(cfg, &dir)).expect("durable service");
            assert!(sharded.durable_dir().is_none(), "Off mode arms no journal");
            sharded.insert(&StreamEdge::new(1, 2, 5, 10));
            sharded.flush();
        }
        // Nothing was journaled, so a restart starts empty.
        let recovered = Store::open(StoreOptions::durable(cfg, &dir)).expect("recovery");
        assert_eq!(recovered.total_items(), 0);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_recovery_rejects_a_mismatched_shard_count() {
        let dir = temp_dir("mismatch");
        {
            let sharded = Store::open(StoreOptions::durable(
                durable_config(2, JournalMode::Buffered),
                &dir,
            ))
            .expect("durable service");
            sharded
                .snapshot_to_dir(&dir)
                .expect("snapshot of an empty durable service");
        }
        let err = Store::open(StoreOptions::durable(
            durable_config(4, JournalMode::Buffered),
            &dir,
        ))
        .map(|_| ())
        .expect_err("shard count mismatch must be rejected");
        assert!(
            err.to_string().contains("shard count mismatch"),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_error_messages_name_the_cause() {
        for (err, needle) in [
            (IngestError::QueueFull, "queue full"),
            (IngestError::Shutdown, "shut down"),
            (IngestError::Rejected, "rejected"),
        ] {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
        // The enum is a std error so callers can box and propagate it.
        let boxed: Box<dyn std::error::Error> = Box::new(IngestError::QueueFull);
        assert!(boxed.to_string().contains("backpressure"));
    }

    #[test]
    fn service_is_send_and_sync_for_shared_serving() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedHiggs>();
        assert_send_sync::<IngestHandle>();
    }

    #[test]
    fn invalid_shard_count_is_rejected() {
        let mut bad = HiggsConfig::paper_default();
        bad.shards = 0;
        assert!(matches!(
            ShardedHiggs::try_new(bad).map(|_| ()),
            Err(ConfigError::InvalidShardCount { shards: 0 })
        ));
        bad.shards = MAX_SHARDS + 1;
        assert!(ShardedHiggs::try_new(bad).is_err());
    }

    #[test]
    fn name_and_space() {
        let mut s = ShardedHiggs::new(config(2));
        assert_eq!(s.name(), "HIGGS-sharded");
        assert_eq!(s.num_shards(), 2);
        s.insert(&StreamEdge::new(1, 2, 1, 1));
        assert!(s.space_bytes() > 0);
    }

    #[test]
    fn bounded_ingest_queue_applies_backpressure_transparently() {
        // A tiny queue cap forces the producer to block on nearly every
        // command; results and teardown must be indistinguishable from the
        // unbounded service.
        let stream = edges(3_000);
        let bounded_config = HiggsConfig::builder()
            .shards(4)
            .ingest_queue_cap(2)
            .build()
            .expect("valid bounded configuration");
        let mut throttled = ShardedHiggs::new(bounded_config);
        let mut unbounded_svc = ShardedHiggs::new(config(4));
        throttled.insert_all(&stream);
        unbounded_svc.insert_all(&stream);
        for e in stream.iter().step_by(11) {
            throttled.delete(e);
            unbounded_svc.delete(e);
        }
        let batch = mixed_batch(1_500);
        assert_eq!(
            throttled.query_batch(&batch),
            unbounded_svc.query_batch(&batch)
        );
        assert_eq!(throttled.total_items(), unbounded_svc.total_items());
        // Drop with a full queue must still terminate (Shutdown may block
        // briefly until the writer drains, never forever).
        throttled.insert_all(&edges(500));
    }

    #[test]
    fn bounded_ingest_producer_blocks_but_stream_lands_intact() {
        // One ordered producer pushes through a 4-command queue while the
        // main thread serves queries (forcing writer/reader lock contention
        // that keeps the queue full): every send must block rather than
        // fail, and the fully flushed service must match a single summary.
        let stream = edges(2_000);
        let bounded_config = HiggsConfig::builder()
            .shards(2)
            .ingest_queue_cap(4)
            .build()
            .expect("valid bounded configuration");
        let sharded = ShardedHiggs::new(bounded_config);
        let handle = sharded.ingest_handle();
        let ingest_stream = stream.clone();
        std::thread::scope(|scope| {
            let producer = scope.spawn(move || {
                for e in &ingest_stream {
                    assert!(handle.insert(e).is_ok(), "send must block, never fail");
                }
            });
            // Concurrent reads are allowed mid-ingest (they observe a
            // per-shard prefix).
            for v in 0..20u64 {
                let _ = sharded.edge_query(v, (v * 13) % 200, TimeRange::all());
            }
            producer.join().expect("producer panicked");
        });
        sharded.flush();
        let mut single = HiggsSummary::new(config(1));
        single.insert_all(&stream);
        let batch = mixed_batch(1_000);
        assert_eq!(sharded.query_batch(&batch), single.query_batch(&batch));
    }

    #[test]
    fn warm_repeated_batch_builds_zero_plans_across_shards() {
        // The cross-batch plan cache works per shard: re-submitting the same
        // windows with no intervening mutation must not run a single
        // boundary search anywhere in the service.
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert_all(&edges(4_000));
        sharded.flush();
        let batch = mixed_batch(2_000);
        let first = sharded.query_batch(&batch);
        sharded.reset_plan_count();
        let second = sharded.query_batch(&batch);
        assert_eq!(sharded.plans_built(), 0, "warm batch must skip planning");
        assert_eq!(first, second);
        // A mutation invalidates: the next batch plans again.
        sharded.insert(&StreamEdge::new(1, 2, 1, 999));
        sharded.reset_plan_count();
        let _ = sharded.query_batch(&batch);
        assert!(sharded.plans_built() > 0, "mutation must invalidate caches");
    }
}
