//! Sharded, concurrently-served HIGGS: the scale-out service layer.
//!
//! [`ShardedHiggs`] partitions one logical summary into a fixed number of
//! [`HiggsSummary`](crate::HiggsSummary) shards by **hash of the source
//! vertex**
//! ([`higgs_common::hashing::shard_of`]). Every component routes with that
//! one function, which yields the invariants the whole layer rests on:
//!
//! * **Ingest** — each shard owns a dedicated writer thread fed over a
//!   `crossbeam` channel. The ingest caller only hashes and enqueues; the
//!   writer applies the edge to its shard's [`ParallelHiggs`], so group-close
//!   aggregation stays off the ingest path *twice removed* (first onto the
//!   writer, then onto the shard's aggregation workers). Per-source ordering
//!   is preserved because a source always routes to the same FIFO channel.
//! * **Query serving** — `query`/`query_batch` decompose a batch with
//!   [`ShardPlan`]: edge queries and out-direction vertex queries go to the
//!   owning source shard, path/subgraph queries split into per-hop edge
//!   queries routed by each hop's source, and in-direction vertex queries
//!   fan out to every shard and sum. Each shard evaluates its sub-batch
//!   through the plan-sharing executor of PR 2, so a batch still costs at
//!   most one Algorithm-3 boundary search per distinct [`TimeRange`] *per
//!   shard*.
//! * **Visibility** — the service is read-your-writes: every trait query
//!   first waits for all previously enqueued mutations (and the background
//!   aggregations they triggered) to land, tracked by a cheap atomic clock,
//!   so the [`TemporalGraphSummary`] contract — including one-sided error —
//!   holds exactly as for an unsharded summary. Reads that arrive while
//!   *other* threads are still ingesting observe a **per-shard prefix** of
//!   the stream: each shard reflects a prefix of its own (per-source-ordered)
//!   sub-stream, but shards progress independently, so the combined view
//!   need not be a prefix of the global arrival order. Since counters only
//!   grow under insertion, every mid-ingest estimate still lies between the
//!   pre-ingest and the fully-flushed result (regression-tested).
//!
//! Concurrent ingest from a non-`&mut` context (a serving loop, multiple
//! producers) goes through a cloneable [`IngestHandle`].
//!
//! **Ingest backpressure.** By default the writer channels are unbounded: a
//! producer that sustainedly enqueues faster than the writers apply (enqueue
//! runs orders of magnitude faster, see the `sharding` bench) grows the
//! queue without bound. Configuring
//! [`HiggsConfigBuilder::ingest_queue_cap`](crate::HiggsConfigBuilder::ingest_queue_cap)
//! bounds each shard's queue at `n` commands instead: once a shard's writer
//! is `n` commands behind, sends into that shard **block** until the writer
//! catches up, so sustained overload turns into producer backpressure
//! rather than memory growth. (One command is one edge, one deletion, or
//! one routed `insert_all` batch of up to 512 edges.) Unbounded producers
//! that prefer pacing to blocking can instead checkpoint on
//! [`ShardedHiggs::flush`] / [`IngestHandle::flush`], and producers that
//! prefer failing fast to blocking can use [`IngestHandle::try_insert`] /
//! [`IngestHandle::try_delete`]. Every ingest outcome is typed: mutation
//! methods return `Result<(), IngestError>` distinguishing backpressure
//! ([`IngestError::QueueFull`]), a torn-down service
//! ([`IngestError::Shutdown`]) and load-shedding rejection
//! ([`IngestError::Rejected`]).
//!
//! **Plan caching.** Each shard's summary owns a cross-batch
//! [`PlanCache`](crate::PlanCache) (see [`plan_cache`](crate::plan_cache)):
//! repeated windows are planned at most once per shard until the shard
//! mutates. The cache composes with the flush clock: writers bump the
//! shard's mutation epoch while applying commands under the write lock, and
//! every trait query first waits for previously enqueued mutations to land
//! (`ensure_visible`), so a query can never be served a plan that predates
//! a mutation it is entitled to observe — read-your-writes holds through
//! the cache exactly as without it.

use crate::config::{ConfigError, HiggsConfig};
use crate::parallel::ParallelHiggs;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use higgs_common::hashing::shard_of;
use higgs_common::{
    Query, ShardPlan, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection, VertexId,
    Weight,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;

/// Upper bound on the shard count: each shard owns a writer thread plus
/// aggregation workers, so the fan-out is validated by
/// [`HiggsConfig::validate`].
pub const MAX_SHARDS: usize = 64;

/// How many queued commands a writer applies per lock acquisition before
/// re-taking the shard lock, bounding both lock churn (ingest) and reader
/// starvation (serving).
const WRITER_COALESCE: usize = 64;

/// Edges per routed batch sent by [`IngestHandle::insert_all`]; amortises one
/// channel send over many edges without letting per-shard buffers grow large.
const INGEST_CHUNK: usize = 512;

/// Process-wide count of live shard writer threads.
static LIVE_WRITERS: AtomicUsize = AtomicUsize::new(0);

/// Number of shard writer threads currently alive in this process, across
/// every [`ShardedHiggs`] instance. Drop joins a service's writers, so after
/// the last service is gone this returns to zero — the regression hook the
/// snapshot/restore tests use to prove repeated restore cycles never leak
/// writer threads.
pub fn live_writer_threads() -> usize {
    LIVE_WRITERS.load(Ordering::SeqCst)
}

/// RAII increment of [`LIVE_WRITERS`]. Created on the **spawning** side
/// (before the thread runs) and moved into the writer thread, so the count
/// covers the writer's whole lifetime deterministically: it reads `shards`
/// the instant construction returns and `0` the instant drop's join
/// returns. Decrements on any exit path, panic included.
struct WriterGuard;

impl WriterGuard {
    fn enter() -> Self {
        LIVE_WRITERS.fetch_add(1, Ordering::SeqCst);
        WriterGuard
    }
}

impl Drop for WriterGuard {
    fn drop(&mut self) {
        LIVE_WRITERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A command processed by one shard's writer thread, in FIFO order.
#[allow(clippy::large_enum_variant)]
enum ShardCommand {
    Insert(StreamEdge),
    InsertBatch(Vec<StreamEdge>),
    Delete(StreamEdge),
    /// Flush the shard's aggregation pipeline, then acknowledge. Because the
    /// channel is FIFO, the acknowledgement also proves every earlier
    /// mutation on this shard has been applied.
    Flush(Sender<()>),
    /// Terminate the writer thread. Sent by `ShardedHiggs::drop` so teardown
    /// does not depend on every [`IngestHandle`] clone being gone (a live
    /// clone keeps the channel open, and a writer blocked in `recv` would
    /// otherwise never join). Commands enqueued after it are dropped.
    Shutdown,
}

/// Monotone clock tracking ingest visibility: `sent` counts mutation
/// commands enqueued across all shards, `visible` the `sent` watermark the
/// last completed flush is known to cover.
#[derive(Debug, Default)]
struct FlushClock {
    sent: AtomicU64,
    visible: AtomicU64,
}

/// Why an ingest operation was not enqueued. Returned by the fallible
/// [`IngestHandle`] surface (`insert` / `insert_all` / `delete` /
/// `try_insert` / `try_delete`), replacing the old untyped `bool` returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// Backpressure: the owning shard's bounded ingest queue is at capacity
    /// (see
    /// [`HiggsConfigBuilder::ingest_queue_cap`](crate::HiggsConfigBuilder::ingest_queue_cap)).
    /// Only the non-blocking `try_*` methods report this — the blocking
    /// methods wait for space instead. Retrying later can succeed.
    QueueFull,
    /// The service has shut down: the shard writer threads are gone, so no
    /// mutation can ever be applied again. Terminal for this handle.
    Shutdown,
    /// The service is in load-shedding teardown
    /// ([`ShardedHiggs::discard_pending`]): writers drop queued commands
    /// unapplied, so the mutation is rejected instead of silently shed.
    /// Terminal for this handle (shedding is irreversible).
    Rejected,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::QueueFull => {
                write!(
                    f,
                    "ingest queue full: shard writer is at capacity (backpressure)"
                )
            }
            IngestError::Shutdown => {
                write!(f, "service shut down: shard writers are gone")
            }
            IngestError::Rejected => {
                write!(f, "mutation rejected: service is in load-shedding teardown")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// A cloneable ingest endpoint for [`ShardedHiggs`]: routes mutations to the
/// owning shard's writer over its channel. All methods take `&self`, so any
/// number of producer threads can ingest while other threads serve queries
/// from the shared [`ShardedHiggs`].
///
/// Mutations enqueued through a handle become visible to trait queries on
/// the parent summary no later than the next query (read-your-writes via the
/// shared flush clock).
#[derive(Clone, Debug)]
pub struct IngestHandle {
    senders: Vec<Sender<ShardCommand>>,
    clock: Arc<FlushClock>,
    /// Shared with the service and its writers: set once the service enters
    /// load-shedding teardown, after which enqueuing is pointless and every
    /// mutation method reports [`IngestError::Rejected`].
    discard: Arc<std::sync::atomic::AtomicBool>,
}

impl IngestHandle {
    /// Whether the service has entered irreversible load-shedding teardown.
    fn shedding(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in
        // `ShardedHiggs::discard_pending`, matching the writers' view of the
        // flag: once a producer observes shedding it also observes the state
        // the shedder published before flipping it.
        self.discard.load(Ordering::Acquire)
    }

    fn mark_sent(&self) {
        // ORDERING: Release — orders the enqueue onto the channel before the
        // clock tick, pairing with the Acquire loads in `flush` /
        // `ensure_visible`: a reader that sees tick N also sees the N
        // enqueues, so read-your-writes cannot miss a mutation.
        self.clock.sent.fetch_add(1, Ordering::Release);
    }

    /// Number of shards this handle routes over.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Enqueues one stream item on its source's shard, blocking for queue
    /// space when the ingest queues are bounded.
    ///
    /// Errors are typed: [`IngestError::Shutdown`] if the service has been
    /// dropped (the writers are gone), [`IngestError::Rejected`] if it
    /// entered load-shedding teardown. The blocking path never reports
    /// [`IngestError::QueueFull`] — use [`try_insert`](Self::try_insert) to
    /// fail fast instead of blocking.
    ///
    /// The flush clock is advanced only *after* a successful send: a
    /// concurrent flush whose target covers this mutation is then guaranteed
    /// to find it already in the FIFO ahead of the flush marker, so
    /// read-your-writes never marks an unsent command visible.
    pub fn insert(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        if self.shedding() {
            return Err(IngestError::Rejected);
        }
        let result = self.senders[shard_of(edge.src, self.senders.len())]
            .send(ShardCommand::Insert(*edge))
            .map_err(|_| IngestError::Shutdown);
        self.mark_sent();
        result
    }

    /// Enqueues one stream item without blocking: where
    /// [`insert`](Self::insert) would wait for queue space, this returns
    /// [`IngestError::QueueFull`] immediately and the caller decides whether
    /// to retry, shed, or back off.
    pub fn try_insert(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        if self.shedding() {
            return Err(IngestError::Rejected);
        }
        match self.senders[shard_of(edge.src, self.senders.len())]
            .try_send(ShardCommand::Insert(*edge))
        {
            Ok(()) => {
                self.mark_sent();
                Ok(())
            }
            Err(crossbeam::channel::TrySendError::Full(_)) => Err(IngestError::QueueFull),
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => Err(IngestError::Shutdown),
        }
    }

    /// Enqueues a slice of stream items in arrival order, batching the
    /// routed edges per shard so a long stream costs one channel send per
    /// `INGEST_CHUNK` (512) edges instead of one per edge. Per-source order
    /// is preserved (routing is deterministic and channels are FIFO).
    ///
    /// An `Err` means part of the slice was **not** enqueued: the service
    /// shut down mid-call ([`IngestError::Shutdown`]) or was shedding load
    /// ([`IngestError::Rejected`]). Because batches are routed per shard,
    /// the enqueued part is not a prefix of `edges` — the slice cannot be
    /// resumed from an offset, so treat any error as "this service is
    /// gone", exactly like an `Err` from [`insert`](Self::insert).
    pub fn insert_all(&self, edges: &[StreamEdge]) -> Result<(), IngestError> {
        self.route_all(edges).1
    }

    /// Shared routing core of [`insert_all`](Self::insert_all) and the
    /// deprecated count-returning shim: routes and enqueues per-shard
    /// batches, reporting how many edges were accepted alongside the typed
    /// outcome.
    fn route_all(&self, edges: &[StreamEdge]) -> (usize, Result<(), IngestError>) {
        if self.shedding() {
            return (0, Err(IngestError::Rejected));
        }
        let shards = self.senders.len();
        let mut accepted = 0usize;
        let mut send_batch = |shard: usize, batch: Vec<StreamEdge>| -> bool {
            let len = batch.len();
            let ok = self.senders[shard]
                .send(ShardCommand::InsertBatch(batch))
                .is_ok();
            self.mark_sent();
            if ok {
                accepted += len;
            }
            ok
        };
        let mut buffers: Vec<Vec<StreamEdge>> = vec![Vec::new(); shards];
        for edge in edges {
            let shard = shard_of(edge.src, shards);
            let buf = &mut buffers[shard];
            buf.push(*edge);
            if buf.len() >= INGEST_CHUNK {
                let batch = std::mem::take(buf);
                if !send_batch(shard, batch) {
                    // The writers are being torn down; every further send
                    // would fail too, so stop routing.
                    return (accepted, Err(IngestError::Shutdown));
                }
            }
        }
        for (shard, buf) in buffers.into_iter().enumerate() {
            if !buf.is_empty() && !send_batch(shard, buf) {
                return (accepted, Err(IngestError::Shutdown));
            }
        }
        (accepted, Ok(()))
    }

    /// Enqueues a deletion on the owning shard; ordered after every earlier
    /// mutation of the same source (same FIFO channel). Blocks for queue
    /// space like [`insert`](Self::insert) and reports the same typed
    /// errors.
    pub fn delete(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        if self.shedding() {
            return Err(IngestError::Rejected);
        }
        let result = self.senders[shard_of(edge.src, self.senders.len())]
            .send(ShardCommand::Delete(*edge))
            .map_err(|_| IngestError::Shutdown);
        self.mark_sent();
        result
    }

    /// Enqueues a deletion without blocking; the non-blocking counterpart of
    /// [`delete`](Self::delete), reporting [`IngestError::QueueFull`] where
    /// the blocking path would wait.
    pub fn try_delete(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        if self.shedding() {
            return Err(IngestError::Rejected);
        }
        match self.senders[shard_of(edge.src, self.senders.len())]
            .try_send(ShardCommand::Delete(*edge))
        {
            Ok(()) => {
                self.mark_sent();
                Ok(())
            }
            Err(crossbeam::channel::TrySendError::Full(_)) => Err(IngestError::QueueFull),
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => Err(IngestError::Shutdown),
        }
    }

    /// Old `bool`-returning insert, kept for one release.
    #[deprecated(
        since = "0.1.0",
        note = "use `insert`, which returns `Result<(), IngestError>` and \
                distinguishes shutdown from load-shedding rejection"
    )]
    pub fn insert_bool(&self, edge: &StreamEdge) -> bool {
        self.insert(edge).is_ok()
    }

    /// Old count-returning bulk insert, kept for one release.
    #[deprecated(
        since = "0.1.0",
        note = "use `insert_all`, which returns `Result<(), IngestError>`; \
                any error means the un-enqueued remainder is not a resumable \
                suffix, so the count was never actionable"
    )]
    pub fn insert_all_count(&self, edges: &[StreamEdge]) -> usize {
        self.route_all(edges).0
    }

    /// Old `bool`-returning delete, kept for one release.
    #[deprecated(
        since = "0.1.0",
        note = "use `delete`, which returns `Result<(), IngestError>` and \
                distinguishes shutdown from load-shedding rejection"
    )]
    pub fn delete_bool(&self, edge: &StreamEdge) -> bool {
        self.delete(edge).is_ok()
    }

    /// Blocks until every mutation enqueued before this call — by any clone
    /// of this handle — has been applied and its background aggregations
    /// installed.
    pub fn flush(&self) {
        // ORDERING: Acquire pairs with the Release fetch_add in `mark_sent`:
        // reading tick `target` guarantees the `target` enqueues that
        // preceded it are visible to the writers we are about to flush.
        let target = self.clock.sent.load(Ordering::Acquire);
        let (ack_tx, ack_rx) = unbounded::<()>();
        let mut expected = 0usize;
        for sender in &self.senders {
            if sender.send(ShardCommand::Flush(ack_tx.clone())).is_ok() {
                expected += 1;
            }
        }
        drop(ack_tx);
        for _ in 0..expected {
            if ack_rx.recv().is_err() {
                break; // a writer exited; nothing further can be flushed
            }
        }
        // ORDERING: AcqRel — Release publishes "everything up to `target` is
        // applied" to later Acquire readers of `visible` (`ensure_visible`);
        // Acquire keeps concurrent flushers' max-updates ordered so the
        // clock never appears to run backwards.
        self.clock.visible.fetch_max(target, Ordering::AcqRel);
    }

    /// Ensures every mutation enqueued so far is visible, flushing only when
    /// the clock says some might not be (crate-internal: the serving layer's
    /// admission loop uses it to honour read-your-writes once per tick).
    pub(crate) fn ensure_visible(&self) {
        // ORDERING: both Acquire — `visible` pairs with the AcqRel fetch_max
        // in `flush`, `sent` with the Release fetch_add in `mark_sent`; a
        // stale read of either can only under-report, which at worst takes
        // the (idempotent) flush path once too often, never skips it.
        if self.clock.visible.load(Ordering::Acquire) < self.clock.sent.load(Ordering::Acquire) {
            self.flush();
        }
    }
}

/// A source-sharded HIGGS service: `N` independent
/// [`HiggsSummary`](crate::HiggsSummary) trees, each fed by its own writer
/// thread and aggregation pipeline, queried as a single
/// [`TemporalGraphSummary`].
///
/// See the [module docs](self) for the routing rules and consistency model,
/// and the crate docs' *Scaling out* section for how this layer composes
/// with the rest of the system.
///
/// ```
/// use higgs::{HiggsConfig, ShardedHiggs};
/// use higgs_common::{Query, StreamEdge, TemporalGraphSummary, TimeRange};
///
/// let config = HiggsConfig::builder().shards(4).build().expect("valid");
/// let mut service = ShardedHiggs::new(config);
/// service.insert(&StreamEdge::new(1, 2, 5, 10));
/// service.insert(&StreamEdge::new(2, 3, 2, 11));
/// // Trait queries are read-your-writes: the enqueued edges are visible.
/// assert_eq!(
///     service.query_batch(&[
///         Query::edge(1, 2, TimeRange::new(0, 20)),
///         Query::path(vec![1, 2, 3], TimeRange::new(0, 20)),
///     ]),
///     vec![5, 7]
/// );
/// ```
pub struct ShardedHiggs {
    shards: Vec<Arc<RwLock<ParallelHiggs>>>,
    handle: IngestHandle,
    writers: Vec<JoinHandle<()>>,
    /// When set, writers drop queued commands unapplied instead of applying
    /// them; see [`Self::discard_pending`].
    discard: Arc<std::sync::atomic::AtomicBool>,
}

impl std::fmt::Debug for ShardedHiggs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHiggs")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

fn writer_loop(
    shard: Arc<RwLock<ParallelHiggs>>,
    rx: Receiver<ShardCommand>,
    discard: Arc<std::sync::atomic::AtomicBool>,
    guard: WriterGuard,
) {
    let _guard = guard;

    fn apply(pipeline: &mut ParallelHiggs, command: ShardCommand) {
        match command {
            ShardCommand::Insert(edge) => pipeline.insert(&edge),
            ShardCommand::InsertBatch(edges) => {
                for edge in &edges {
                    pipeline.insert(edge);
                }
            }
            ShardCommand::Delete(edge) => pipeline.delete(&edge),
            ShardCommand::Flush(ack) => {
                pipeline.flush();
                let _ = ack.send(());
            }
            ShardCommand::Shutdown => unreachable!("handled by the loop"),
        }
    }

    'serve: while let Ok(command) = rx.recv() {
        if matches!(command, ShardCommand::Shutdown) {
            break 'serve;
        }
        // ORDERING: Acquire pairs with the Release store in
        // `discard_pending`, so a writer that observes shedding mode also
        // observes everything the shedder did before flipping the flag.
        if discard.load(Ordering::Acquire) {
            // Shedding mode: drop the command unapplied (a Flush's pending
            // acknowledger is dropped with it, which unblocks the flusher).
            continue;
        }
        let mut pipeline = shard.write().expect("shard lock poisoned");
        apply(&mut pipeline, command);
        // Apply whatever else is already queued while we hold the lock,
        // bounded so concurrent readers are not starved.
        for _ in 0..WRITER_COALESCE {
            match rx.try_recv() {
                Ok(ShardCommand::Shutdown) => break 'serve,
                Ok(next) => apply(&mut pipeline, next),
                Err(_) => break,
            }
        }
    }
    // Either a Shutdown arrived (commands queued behind it are dropped) or
    // every sender is gone and the queue is fully drained.
}

impl ShardedHiggs {
    /// Creates a sharded service with `config.shards` shards, one writer
    /// thread per shard, and one aggregation worker per shard pipeline.
    ///
    /// Panics on an invalid configuration; use [`Self::try_new`] for
    /// fallible construction.
    pub fn new(config: HiggsConfig) -> Self {
        Self::try_new(config).expect("invalid HiggsConfig")
    }

    /// Creates a sharded service, returning the violated constraint instead
    /// of panicking when the configuration is invalid.
    pub fn try_new(config: HiggsConfig) -> Result<Self, ConfigError> {
        Self::try_with_workers(config, 1)
    }

    /// Creates a sharded service with `workers_per_shard` aggregation
    /// workers behind each shard's writer.
    ///
    /// When [`HiggsConfig::pin_workers`] is set, shard `s`'s whole thread
    /// group — its writer plus its aggregation workers — pins to core
    /// `s % available_cores`, keeping each shard's slabs resident in one
    /// core's private cache.
    pub fn try_with_workers(
        config: HiggsConfig,
        workers_per_shard: usize,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let pipelines = (0..config.shards)
            .map(|s| {
                ParallelHiggs::new_on_core(
                    config,
                    workers_per_shard,
                    ParallelHiggs::pin_core_for(&config, s),
                )
            })
            .collect();
        Self::from_pipelines(config, pipelines)
    }

    /// Assembles a service around pre-built per-shard pipelines (fresh ones
    /// for [`try_with_workers`], restored ones for snapshot restore),
    /// spawning one writer thread per shard with an empty queue.
    pub(crate) fn from_pipelines(
        config: HiggsConfig,
        pipelines: Vec<ParallelHiggs>,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if pipelines.len() != config.shards {
            return Err(ConfigError::InvalidShardCount {
                shards: pipelines.len(),
            });
        }
        let num_shards = pipelines.len();
        let mut shards = Vec::with_capacity(num_shards);
        let mut senders = Vec::with_capacity(num_shards);
        let mut writers = Vec::with_capacity(num_shards);
        let discard = Arc::new(std::sync::atomic::AtomicBool::new(false));
        for (shard_index, pipeline) in pipelines.into_iter().enumerate() {
            let shard = Arc::new(RwLock::new(pipeline));
            let (tx, rx) = match config.ingest_queue_cap {
                Some(cap) => bounded::<ShardCommand>(cap),
                None => unbounded::<ShardCommand>(),
            };
            let worker_shard = shard.clone();
            let worker_discard = discard.clone();
            let guard = WriterGuard::enter();
            // Same core as this shard's aggregation workers (None when
            // pinning is off); pinning is best-effort.
            let pin_core = ParallelHiggs::pin_core_for(&config, shard_index);
            writers.push(std::thread::spawn(move || {
                if let Some(core) = pin_core {
                    let _ = higgs_common::affinity::pin_to_core(core);
                }
                writer_loop(worker_shard, rx, worker_discard, guard)
            }));
            shards.push(shard);
            senders.push(tx);
        }
        Ok(Self {
            shards,
            handle: IngestHandle {
                senders,
                clock: Arc::new(FlushClock::default()),
                discard: discard.clone(),
            },
            writers,
            discard,
        })
    }

    /// The per-shard pipelines (crate-internal; the snapshot codec reads
    /// each shard's summary under its lock).
    pub(crate) fn shard_pipelines(&self) -> &[Arc<RwLock<ParallelHiggs>>] {
        &self.shards
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// A cloneable ingest endpoint usable from other threads while this
    /// summary concurrently serves queries.
    pub fn ingest_handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// Blocks until every mutation enqueued so far (through the trait
    /// surface or any [`IngestHandle`]) is applied and aggregated.
    pub fn flush(&self) {
        self.handle.flush();
    }

    fn read_shard(&self, shard: usize) -> RwLockReadGuard<'_, ParallelHiggs> {
        self.shards[shard].read().expect("shard lock poisoned")
    }

    /// Total number of stream items currently held (inserted minus deleted),
    /// after making enqueued mutations visible.
    pub fn total_items(&self) -> u64 {
        self.handle.ensure_visible();
        self.shards
            .iter()
            .enumerate()
            .map(|(s, _)| self.read_shard(s).summary().total_items())
            .sum()
    }

    /// Number of query plans (Algorithm-3 boundary searches) built across
    /// all shards. The per-shard plan-sharing executor guarantees a batch
    /// adds at most `distinct ranges × shards touched` to this counter.
    pub fn plans_built(&self) -> u64 {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, _)| self.read_shard(s).summary().plans_built())
            .sum()
    }

    /// Resets the plan counter on every shard (diagnostic hook).
    pub fn reset_plan_count(&self) {
        for s in 0..self.shards.len() {
            self.read_shard(s).summary().reset_plan_count();
        }
    }

    /// Switches the service into load-shedding teardown: every mutation
    /// still queued (and any enqueued afterwards) is dropped unapplied, so a
    /// subsequent drop terminates without working off the backlog.
    ///
    /// This exists for benchmarks and tests that measure the ingest-path
    /// (enqueue) cost in isolation and then abandon the instance, and for
    /// emergency shedding; it is irreversible and leaves query results
    /// reflecting only the mutations applied before the call.
    pub fn discard_pending(&self) {
        // ORDERING: Release pairs with the writers' Acquire load of the
        // flag (see the serve loop), publishing the caller's state before
        // shedding becomes observable.
        self.discard.store(true, Ordering::Release);
    }

    /// Per-shard leaf counts (diagnostic: shows how evenly the stream's
    /// sources spread over the shards).
    pub fn shard_leaf_counts(&self) -> Vec<usize> {
        self.handle.ensure_visible();
        (0..self.shards.len())
            .map(|s| self.read_shard(s).summary().leaf_count())
            .collect()
    }
}

impl Drop for ShardedHiggs {
    fn drop(&mut self) {
        // A Shutdown marker (FIFO: behind everything this service enqueued)
        // ends each writer loop even when surviving IngestHandle clones keep
        // the channels open — relying on channel disconnection alone would
        // deadlock the join below in that case. Dropping the last shard
        // reference then joins its aggregation workers.
        for sender in &self.handle.senders {
            let _ = sender.send(ShardCommand::Shutdown);
        }
        self.handle.senders.clear();
        for writer in self.writers.drain(..) {
            let _ = writer.join();
        }
    }
}

impl TemporalGraphSummary for ShardedHiggs {
    fn insert(&mut self, edge: &StreamEdge) {
        // Writers cannot be gone while `self` is alive; the only possible
        // error is Rejected after `discard_pending`, where dropping the
        // mutation is exactly the contract.
        let _ = self.handle.insert(edge);
    }

    fn insert_all(&mut self, edges: &[StreamEdge]) {
        let _ = self.handle.insert_all(edges);
    }

    fn delete(&mut self, edge: &StreamEdge) {
        let _ = self.handle.delete(edge);
    }

    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        self.handle.ensure_visible();
        self.read_shard(shard_of(src, self.shards.len()))
            .edge_query(src, dst, range)
    }

    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        self.handle.ensure_visible();
        match direction {
            VertexDirection::Out => self
                .read_shard(shard_of(vertex, self.shards.len()))
                .vertex_query(vertex, direction, range),
            VertexDirection::In => (0..self.shards.len())
                .map(|s| self.read_shard(s).vertex_query(vertex, direction, range))
                .sum(),
        }
    }

    fn query(&self, query: &Query) -> Weight {
        self.query_batch(std::slice::from_ref(query))[0]
    }

    fn query_batch(&self, queries: &[Query]) -> Vec<Weight> {
        self.handle.ensure_visible();
        let plan = ShardPlan::build(queries, self.shards.len());
        // One read lock per shard, taken and released sequentially; each
        // shard runs its sub-batch through the plan-sharing executor, so the
        // whole batch costs at most one boundary search per distinct range
        // per shard.
        let per_shard: Vec<Vec<Weight>> = (0..self.shards.len())
            .map(|s| {
                let sub = plan.sub_batch(s);
                if sub.is_empty() {
                    Vec::new()
                } else {
                    self.read_shard(s).query_batch(sub)
                }
            })
            .collect();
        plan.gather(&per_shard)
    }

    fn space_bytes(&self) -> usize {
        self.handle.ensure_visible();
        (0..self.shards.len())
            .map(|s| self.read_shard(s).space_bytes())
            .sum()
    }

    fn name(&self) -> &'static str {
        "HIGGS-sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::HiggsSummary;
    use higgs_common::QueryBatch;

    fn config(shards: usize) -> HiggsConfig {
        HiggsConfig::builder()
            .shards(shards)
            .build()
            .expect("valid test configuration")
    }

    fn edges(n: u64) -> Vec<StreamEdge> {
        (0..n)
            .map(|i| StreamEdge::new(i % 200, (i * 13) % 200, 1 + i % 4, i / 2))
            .collect()
    }

    fn mixed_batch(span: u64) -> Vec<Query> {
        let a = TimeRange::new(0, span / 2);
        let b = TimeRange::new(span / 4, span);
        vec![
            Query::edge(1, 13, a),
            Query::edge(5, 65, b),
            Query::vertex(7, VertexDirection::Out, a),
            Query::vertex(7, VertexDirection::In, a),
            Query::vertex(91, VertexDirection::In, b),
            Query::path(vec![1, 13, 169, 197], a),
            Query::subgraph(vec![(2, 26), (3, 39), (4, 52)], b),
        ]
    }

    #[test]
    fn sharded_matches_single_summary_on_all_query_kinds() {
        let stream = edges(5_000);
        let mut single = HiggsSummary::new(config(1));
        single.insert_all(&stream);
        for shards in [1usize, 2, 3, 4, 8] {
            let mut sharded = ShardedHiggs::new(config(shards));
            sharded.insert_all(&stream);
            let batch = mixed_batch(2_500);
            assert_eq!(
                sharded.query_batch(&batch),
                single.query_batch(&batch),
                "{shards} shards diverged on the batch surface"
            );
            for q in &batch {
                assert_eq!(sharded.query(q), single.query(q), "{shards} shards, {q:?}");
            }
            assert_eq!(sharded.total_items(), single.total_items());
        }
    }

    #[test]
    fn per_edge_trait_insert_matches_batched_ingest() {
        let stream = edges(2_000);
        let mut a = ShardedHiggs::new(config(4));
        let mut b = ShardedHiggs::new(config(4));
        for e in &stream {
            a.insert(e);
        }
        b.insert_all(&stream);
        let batch = mixed_batch(1_000);
        assert_eq!(a.query_batch(&batch), b.query_batch(&batch));
        assert_eq!(a.total_items(), b.total_items());
    }

    #[test]
    fn deletes_route_to_the_inserting_shard() {
        let stream = edges(3_000);
        let mut single = HiggsSummary::new(config(1));
        let mut sharded = ShardedHiggs::new(config(4));
        single.insert_all(&stream);
        sharded.insert_all(&stream);
        for e in stream.iter().step_by(7) {
            single.delete(e);
            sharded.delete(e);
        }
        let batch = mixed_batch(1_500);
        assert_eq!(sharded.query_batch(&batch), single.query_batch(&batch));
        assert_eq!(sharded.total_items(), single.total_items());
    }

    #[test]
    fn queries_are_read_your_writes_without_explicit_flush() {
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert(&StreamEdge::new(1, 2, 5, 10));
        // No flush: the very next query must already see the edge.
        assert_eq!(sharded.edge_query(1, 2, TimeRange::all()), 5);
        sharded.insert(&StreamEdge::new(1, 2, 3, 11));
        assert_eq!(
            sharded.vertex_query(1, VertexDirection::Out, TimeRange::all()),
            8
        );
        assert_eq!(
            sharded.vertex_query(2, VertexDirection::In, TimeRange::all()),
            8
        );
    }

    #[test]
    fn batch_costs_at_most_one_plan_per_range_per_shard() {
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert_all(&edges(4_000));
        let batch: QueryBatch = mixed_batch(2_000).into_iter().collect();
        sharded.flush();
        sharded.reset_plan_count();
        let _ = sharded.query_batch(batch.queries());
        let plans = sharded.plans_built();
        assert!(
            plans <= (batch.distinct_ranges() * sharded.num_shards()) as u64,
            "{plans} plans for {} ranges over {} shards",
            batch.distinct_ranges(),
            sharded.num_shards()
        );
        assert!(plans > 0);
    }

    #[test]
    fn ingest_handle_feeds_queries_from_another_thread() {
        let sharded = ShardedHiggs::new(config(2));
        let handle = sharded.ingest_handle();
        let stream = edges(2_000);
        let ingest_stream = stream.clone();
        std::thread::scope(|scope| {
            let producer = scope.spawn(move || {
                for e in &ingest_stream {
                    assert!(handle.insert(e).is_ok());
                }
            });
            // Concurrent reads are allowed mid-ingest (they observe a prefix).
            let _ = sharded.edge_query(0, 0, TimeRange::all());
            producer.join().expect("producer panicked");
        });
        sharded.flush();
        let mut single = HiggsSummary::new(config(1));
        single.insert_all(&stream);
        let batch = mixed_batch(1_000);
        assert_eq!(sharded.query_batch(&batch), single.query_batch(&batch));
    }

    #[test]
    fn stream_spreads_over_shards() {
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert_all(&edges(8_000));
        let leaves = sharded.shard_leaf_counts();
        assert_eq!(leaves.len(), 4);
        assert!(
            leaves.iter().all(|&l| l > 0),
            "every shard must own part of the stream: {leaves:?}"
        );
    }

    #[test]
    fn flush_is_idempotent_and_drop_mid_stream_terminates() {
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert_all(&edges(4_000));
        sharded.flush();
        sharded.flush();
        assert_eq!(sharded.total_items(), 4_000);
        // Drop with freshly enqueued, unflushed work: must terminate.
        sharded.insert_all(&edges(2_000));
    }

    #[test]
    fn drop_terminates_while_an_ingest_handle_clone_is_still_alive() {
        // Regression test: a surviving IngestHandle keeps the command
        // channels open, so teardown must not rely on channel disconnection
        // to stop the writers — the Shutdown marker has to end them, and
        // later sends on the orphaned handle must fail gracefully.
        let mut sharded = ShardedHiggs::new(config(2));
        sharded.insert(&StreamEdge::new(1, 2, 5, 1));
        let handle = sharded.ingest_handle();
        drop(sharded); // must join writers despite `handle` being alive
        assert_eq!(
            handle.insert(&StreamEdge::new(3, 4, 1, 2)),
            Err(IngestError::Shutdown),
            "sends on a shut-down service must report the typed failure"
        );
        assert_eq!(
            handle.delete(&StreamEdge::new(3, 4, 1, 2)),
            Err(IngestError::Shutdown)
        );
        assert_eq!(
            handle.insert_all(&edges(600)),
            Err(IngestError::Shutdown),
            "bulk routing must stop at the first dead shard"
        );
        assert_eq!(
            handle.try_insert(&StreamEdge::new(3, 4, 1, 2)),
            Err(IngestError::Shutdown)
        );
        handle.flush(); // must not hang either
    }

    #[test]
    fn discard_pending_sheds_backlog_and_still_terminates() {
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert(&StreamEdge::new(1, 2, 5, 1));
        sharded.flush();
        sharded.discard_pending();
        sharded.insert_all(&edges(2_000)); // shed, never applied
        sharded.flush(); // must not hang: discarded flushes unblock by drop
        assert_eq!(sharded.edge_query(1, 2, TimeRange::all()), 5);
        // The fallible handle surface reports shedding as a typed rejection
        // instead of silently dropping.
        let handle = sharded.ingest_handle();
        let e = StreamEdge::new(9, 9, 1, 9);
        assert_eq!(handle.insert(&e), Err(IngestError::Rejected));
        assert_eq!(handle.try_insert(&e), Err(IngestError::Rejected));
        assert_eq!(handle.delete(&e), Err(IngestError::Rejected));
        assert_eq!(handle.try_delete(&e), Err(IngestError::Rejected));
        assert_eq!(handle.insert_all(&edges(10)), Err(IngestError::Rejected));
        // Drop must terminate without working off the discarded backlog.
    }

    #[test]
    fn try_insert_reports_queue_full_under_a_stalled_writer() {
        let bounded_config = HiggsConfig::builder()
            .shards(1)
            .ingest_queue_cap(1)
            .build()
            .expect("valid bounded configuration");
        let sharded = ShardedHiggs::new(bounded_config);
        let handle = sharded.ingest_handle();
        let e = StreamEdge::new(1, 2, 1, 1);
        // Stall the single shard's writer by holding its write lock: the
        // writer can dequeue at most one in-flight command before blocking
        // on the lock, so the 1-slot queue must fill within a few sends.
        let stall = sharded.shards[0].write().expect("shard lock poisoned");
        let mut accepted = 0usize;
        let mut saw_full = false;
        for _ in 0..64 {
            match handle.try_insert(&e) {
                Ok(()) => accepted += 1,
                Err(IngestError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(other) => panic!("unexpected ingest error: {other}"),
            }
        }
        assert!(saw_full, "a stalled 1-slot queue must report QueueFull");
        assert!(accepted >= 1, "the free slot must accept a send first");
        drop(stall);
        // Backpressure is transient: once the writer drains, sends succeed
        // again and everything accepted lands.
        handle.flush();
        assert!(handle.try_insert(&e).is_ok());
        sharded.flush();
        assert_eq!(sharded.total_items(), accepted as u64 + 1);
        // try_delete shares the same non-blocking path; on the drained
        // queue it must enqueue rather than report backpressure.
        assert_eq!(handle.try_delete(&e), Ok(()));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_bool_shims_mirror_the_typed_surface() {
        let sharded = ShardedHiggs::new(config(2));
        let handle = sharded.ingest_handle();
        let e = StreamEdge::new(1, 2, 5, 1);
        assert!(handle.insert_bool(&e));
        assert_eq!(handle.insert_all_count(&edges(700)), 700);
        assert!(handle.delete_bool(&e));
        sharded.flush();
        assert_eq!(sharded.total_items(), 700);
        sharded.discard_pending();
        assert!(!handle.insert_bool(&e), "rejection maps to false");
        assert_eq!(handle.insert_all_count(&edges(10)), 0);
        assert!(!handle.delete_bool(&e));
    }

    #[test]
    fn ingest_error_messages_name_the_cause() {
        for (err, needle) in [
            (IngestError::QueueFull, "queue full"),
            (IngestError::Shutdown, "shut down"),
            (IngestError::Rejected, "rejected"),
        ] {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
        // The enum is a std error so callers can box and propagate it.
        let boxed: Box<dyn std::error::Error> = Box::new(IngestError::QueueFull);
        assert!(boxed.to_string().contains("backpressure"));
    }

    #[test]
    fn service_is_send_and_sync_for_shared_serving() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedHiggs>();
        assert_send_sync::<IngestHandle>();
    }

    #[test]
    fn invalid_shard_count_is_rejected() {
        let mut bad = HiggsConfig::paper_default();
        bad.shards = 0;
        assert!(matches!(
            ShardedHiggs::try_new(bad).map(|_| ()),
            Err(ConfigError::InvalidShardCount { shards: 0 })
        ));
        bad.shards = MAX_SHARDS + 1;
        assert!(ShardedHiggs::try_new(bad).is_err());
    }

    #[test]
    fn name_and_space() {
        let mut s = ShardedHiggs::new(config(2));
        assert_eq!(s.name(), "HIGGS-sharded");
        assert_eq!(s.num_shards(), 2);
        s.insert(&StreamEdge::new(1, 2, 1, 1));
        assert!(s.space_bytes() > 0);
    }

    #[test]
    fn bounded_ingest_queue_applies_backpressure_transparently() {
        // A tiny queue cap forces the producer to block on nearly every
        // command; results and teardown must be indistinguishable from the
        // unbounded service.
        let stream = edges(3_000);
        let bounded_config = HiggsConfig::builder()
            .shards(4)
            .ingest_queue_cap(2)
            .build()
            .expect("valid bounded configuration");
        let mut throttled = ShardedHiggs::new(bounded_config);
        let mut unbounded_svc = ShardedHiggs::new(config(4));
        throttled.insert_all(&stream);
        unbounded_svc.insert_all(&stream);
        for e in stream.iter().step_by(11) {
            throttled.delete(e);
            unbounded_svc.delete(e);
        }
        let batch = mixed_batch(1_500);
        assert_eq!(
            throttled.query_batch(&batch),
            unbounded_svc.query_batch(&batch)
        );
        assert_eq!(throttled.total_items(), unbounded_svc.total_items());
        // Drop with a full queue must still terminate (Shutdown may block
        // briefly until the writer drains, never forever).
        throttled.insert_all(&edges(500));
    }

    #[test]
    fn bounded_ingest_producer_blocks_but_stream_lands_intact() {
        // One ordered producer pushes through a 4-command queue while the
        // main thread serves queries (forcing writer/reader lock contention
        // that keeps the queue full): every send must block rather than
        // fail, and the fully flushed service must match a single summary.
        let stream = edges(2_000);
        let bounded_config = HiggsConfig::builder()
            .shards(2)
            .ingest_queue_cap(4)
            .build()
            .expect("valid bounded configuration");
        let sharded = ShardedHiggs::new(bounded_config);
        let handle = sharded.ingest_handle();
        let ingest_stream = stream.clone();
        std::thread::scope(|scope| {
            let producer = scope.spawn(move || {
                for e in &ingest_stream {
                    assert!(handle.insert(e).is_ok(), "send must block, never fail");
                }
            });
            // Concurrent reads are allowed mid-ingest (they observe a
            // per-shard prefix).
            for v in 0..20u64 {
                let _ = sharded.edge_query(v, (v * 13) % 200, TimeRange::all());
            }
            producer.join().expect("producer panicked");
        });
        sharded.flush();
        let mut single = HiggsSummary::new(config(1));
        single.insert_all(&stream);
        let batch = mixed_batch(1_000);
        assert_eq!(sharded.query_batch(&batch), single.query_batch(&batch));
    }

    #[test]
    fn warm_repeated_batch_builds_zero_plans_across_shards() {
        // The cross-batch plan cache works per shard: re-submitting the same
        // windows with no intervening mutation must not run a single
        // boundary search anywhere in the service.
        let mut sharded = ShardedHiggs::new(config(4));
        sharded.insert_all(&edges(4_000));
        sharded.flush();
        let batch = mixed_batch(2_000);
        let first = sharded.query_batch(&batch);
        sharded.reset_plan_count();
        let second = sharded.query_batch(&batch);
        assert_eq!(sharded.plans_built(), 0, "warm batch must skip planning");
        assert_eq!(first, second);
        // A mutation invalidates: the next batch plans again.
        sharded.insert(&StreamEdge::new(1, 2, 1, 999));
        sharded.reset_plan_count();
        let _ = sharded.query_batch(&batch);
        assert!(sharded.plans_built() > 0, "mutation must invalidate caches");
    }
}
