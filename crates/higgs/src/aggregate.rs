//! Algorithm 2: bottom-up aggregation of child matrices into their parent.
//!
//! A node at layer `l+1` aggregates the `θ` matrices of its children at layer
//! `l` into a single matrix that is `4^R` times larger: the top `R`
//! fingerprint bits of every entry are shifted into the address (Fig. 8),
//! which is a pure re-partitioning of the original hash bits. Entries that
//! were distinct at the leaf layer therefore remain distinct (or merge only
//! if they were already indistinguishable), and aggregation introduces no
//! additional error. Timestamps are dropped: aggregated matrices are purely
//! topological (Section IV-A).

use crate::config::HiggsConfig;
use crate::matrix::CompressedMatrix;
use higgs_common::hashing::FingerprintLayout;

/// Aggregates `children` (all at `child_layer`) into a new matrix at
/// `child_layer + 1`.
///
/// The children's stored entries are lifted with
/// [`FingerprintLayout::lift`]: the bucket position and recorded MMB index
/// pair give back the base address, the top `R` fingerprint bits move into
/// the address, and the entry is re-inserted into the (4^R-times larger)
/// parent matrix. Entries with zero weight (fully deleted) are skipped.
///
/// [`CompressedMatrix::entries`] yields unpacked [`Entry`](crate::matrix::Entry)
/// values straight off the child's contiguous slab, so the per-child walk is
/// a linear sweep rather than a bucket-by-bucket pointer chase.
pub fn aggregate_matrices(
    layout: &FingerprintLayout,
    config: &HiggsConfig,
    children: &[&CompressedMatrix],
    child_layer: u32,
) -> CompressedMatrix {
    let parent_layer = child_layer + 1;
    let mut parent = CompressedMatrix::new(
        layout.matrix_side(parent_layer),
        parent_layer,
        config.bucket_entries,
        config.mapping_addresses,
    );
    for child in children {
        debug_assert_eq!(child.layer(), child_layer, "child at unexpected layer");
        let seq = child.address_sequence();
        for (row, col, entry) in child.entries() {
            if entry.weight == 0 {
                continue;
            }
            let base_src = seq.base_of(row, u32::from(entry.idx_src));
            let base_dst = seq.base_of(col, u32::from(entry.idx_dst));
            let (fp_src, addr_src) = layout.lift(u64::from(entry.fp_src), base_src, child_layer);
            let (fp_dst, addr_dst) = layout.lift(u64::from(entry.fp_dst), base_dst, child_layer);
            parent.insert_aggregated(
                addr_src,
                addr_dst,
                fp_src as u32,
                fp_dst as u32,
                entry.weight,
            );
        }
    }
    parent
}

/// Aggregates leaf-layer matrices directly into a matrix at `target_layer`,
/// applying the Algorithm-2 lift repeatedly (layer 1 → 2 → … → target).
///
/// Used by deferred/parallel aggregation, where a node's children may not
/// have materialised their own aggregates yet: any ancestor can always be
/// rebuilt from the leaf matrices it covers, independent of other jobs.
pub fn aggregate_leaves_to_layer(
    layout: &FingerprintLayout,
    config: &HiggsConfig,
    leaves: &[&CompressedMatrix],
    target_layer: u32,
) -> CompressedMatrix {
    assert!(
        target_layer >= 2,
        "target layer must be above the leaf layer"
    );
    let mut parent = CompressedMatrix::new(
        layout.matrix_side(target_layer),
        target_layer,
        config.bucket_entries,
        config.mapping_addresses,
    );
    for leaf in leaves {
        debug_assert_eq!(
            leaf.layer(),
            1,
            "aggregate_leaves_to_layer expects leaf matrices"
        );
        let seq = leaf.address_sequence();
        for (row, col, entry) in leaf.entries() {
            if entry.weight == 0 {
                continue;
            }
            let mut fp_src = u64::from(entry.fp_src);
            let mut addr_src = seq.base_of(row, u32::from(entry.idx_src));
            let mut fp_dst = u64::from(entry.fp_dst);
            let mut addr_dst = seq.base_of(col, u32::from(entry.idx_dst));
            for layer in 1..target_layer {
                let (fs, as_) = layout.lift(fp_src, addr_src, layer);
                let (fd, ad) = layout.lift(fp_dst, addr_dst, layer);
                fp_src = fs;
                addr_src = as_;
                fp_dst = fd;
                addr_dst = ad;
            }
            parent.insert_aggregated(
                addr_src,
                addr_dst,
                fp_src as u32,
                fp_dst as u32,
                entry.weight,
            );
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use higgs_common::hashing::vertex_hash;

    fn setup() -> (FingerprintLayout, HiggsConfig) {
        let config = HiggsConfig {
            d1: 8,
            f1_bits: 12,
            r_bits: 1,
            bucket_entries: 3,
            mapping_addresses: 4,
            overflow_blocks: true,
            shards: 1,
            plan_cache_capacity: 8,
            ingest_queue_cap: None,
            pin_workers: false,
            admission_tick: std::time::Duration::ZERO,
            service_queue_depth: None,
            journal_mode: crate::config::JournalMode::Off,
        };
        (config.layout(), config)
    }

    /// Inserts an edge keyed by vertex ids into a leaf matrix the same way
    /// the tree does.
    fn leaf_insert(m: &mut CompressedMatrix, layout: &FingerprintLayout, s: u64, d: u64, w: i64) {
        let hs = layout.split(vertex_hash(s, 0), 1);
        let hd = layout.split(vertex_hash(d, 0), 1);
        assert!(m.try_insert(
            hs.address,
            hd.address,
            hs.fingerprint as u32,
            hd.fingerprint as u32,
            Some(0),
            w
        ));
    }

    fn parent_edge_weight(
        parent: &CompressedMatrix,
        layout: &FingerprintLayout,
        s: u64,
        d: u64,
    ) -> u64 {
        let hs = layout.split(vertex_hash(s, 0), 2);
        let hd = layout.split(vertex_hash(d, 0), 2);
        parent.edge_weight(
            hs.address,
            hd.address,
            hs.fingerprint as u32,
            hd.fingerprint as u32,
            None,
        )
    }

    #[test]
    fn aggregation_preserves_every_edge_weight() {
        let (layout, config) = setup();
        let mut children = Vec::new();
        let mut truth = std::collections::HashMap::new();
        for c in 0..4u64 {
            let mut m = CompressedMatrix::new(8, 1, 3, 4);
            for k in 0..40u64 {
                let (s, d, w) = (c * 100 + k, c * 100 + k + 1, 1 + (k % 3) as i64);
                leaf_insert(&mut m, &layout, s, d, w);
                *truth.entry((s, d)).or_insert(0i64) += w;
            }
            children.push(m);
        }
        let refs: Vec<&CompressedMatrix> = children.iter().collect();
        let parent = aggregate_matrices(&layout, &config, &refs, 1);
        assert_eq!(parent.layer(), 2);
        assert_eq!(parent.side(), 16);
        for (&(s, d), &w) in &truth {
            assert!(
                parent_edge_weight(&parent, &layout, s, d) >= w as u64,
                "aggregate lost weight for ({s},{d})"
            );
        }
        // Total mass is conserved exactly.
        let total: i64 = parent.entries().map(|(_, _, e)| e.weight).sum();
        assert_eq!(total, truth.values().sum::<i64>());
    }

    #[test]
    fn aggregation_is_exact_when_capacity_suffices() {
        let (layout, config) = setup();
        let mut children = Vec::new();
        let mut truth = std::collections::HashMap::new();
        for c in 0..4u64 {
            let mut m = CompressedMatrix::new(8, 1, 3, 4);
            for k in 0..20u64 {
                let (s, d) = (1000 + c * 20 + k, 5000 + c * 20 + k);
                leaf_insert(&mut m, &layout, s, d, 2);
                *truth.entry((s, d)).or_insert(0u64) += 2;
            }
            children.push(m);
        }
        let refs: Vec<&CompressedMatrix> = children.iter().collect();
        let parent = aggregate_matrices(&layout, &config, &refs, 1);
        assert_eq!(parent.spill_len(), 0);
        // No extra error: parent answers equal the per-child sums whenever the
        // vertices do not collide at the leaf layer, and never underestimate.
        for (&(s, d), &w) in &truth {
            let child_sum: u64 = children
                .iter()
                .map(|m| {
                    let hs = layout.split(vertex_hash(s, 0), 1);
                    let hd = layout.split(vertex_hash(d, 0), 1);
                    m.edge_weight(
                        hs.address,
                        hd.address,
                        hs.fingerprint as u32,
                        hd.fingerprint as u32,
                        None,
                    )
                })
                .sum();
            let parent_est = parent_edge_weight(&parent, &layout, s, d);
            assert_eq!(
                parent_est, child_sum,
                "aggregation added error for ({s},{d})"
            );
            assert!(parent_est >= w);
        }
    }

    #[test]
    fn aggregating_aggregates_climbs_layers() {
        let (layout, config) = setup();
        let mut leaves = Vec::new();
        for c in 0..4u64 {
            let mut m = CompressedMatrix::new(8, 1, 3, 4);
            leaf_insert(&mut m, &layout, c, c + 1, 3);
            leaves.push(m);
        }
        let refs: Vec<&CompressedMatrix> = leaves.iter().collect();
        let level2 = aggregate_matrices(&layout, &config, &refs, 1);
        let level3 = aggregate_matrices(&layout, &config, &[&level2], 2);
        assert_eq!(level3.layer(), 3);
        assert_eq!(level3.side(), 32);
        let hs = layout.split(vertex_hash(0, 0), 3);
        let hd = layout.split(vertex_hash(1, 0), 3);
        assert_eq!(
            level3.edge_weight(
                hs.address,
                hd.address,
                hs.fingerprint as u32,
                hd.fingerprint as u32,
                None
            ),
            3
        );
    }

    #[test]
    fn direct_leaf_aggregation_matches_stepwise_aggregation() {
        let (layout, config) = setup();
        let mut leaves = Vec::new();
        for c in 0..16u64 {
            let mut m = CompressedMatrix::new(8, 1, 3, 4);
            for k in 0..10u64 {
                leaf_insert(&mut m, &layout, c * 50 + k, c * 50 + k + 17, 1);
            }
            leaves.push(m);
        }
        let refs: Vec<&CompressedMatrix> = leaves.iter().collect();
        // Stepwise: four level-2 aggregates, then one level-3 aggregate.
        let level2: Vec<CompressedMatrix> = (0..4)
            .map(|g| aggregate_matrices(&layout, &config, &refs[g * 4..(g + 1) * 4], 1))
            .collect();
        let l2_refs: Vec<&CompressedMatrix> = level2.iter().collect();
        let stepwise = aggregate_matrices(&layout, &config, &l2_refs, 2);
        // Direct: straight from the 16 leaves to layer 3.
        let direct = aggregate_leaves_to_layer(&layout, &config, &refs, 3);
        assert_eq!(stepwise.layer(), direct.layer());
        assert_eq!(stepwise.side(), direct.side());
        for c in 0..16u64 {
            for k in 0..10u64 {
                let (s, d) = (c * 50 + k, c * 50 + k + 17);
                let hs = layout.split(vertex_hash(s, 0), 3);
                let hd = layout.split(vertex_hash(d, 0), 3);
                let a = stepwise.edge_weight(
                    hs.address,
                    hd.address,
                    hs.fingerprint as u32,
                    hd.fingerprint as u32,
                    None,
                );
                let b = direct.edge_weight(
                    hs.address,
                    hd.address,
                    hs.fingerprint as u32,
                    hd.fingerprint as u32,
                    None,
                );
                assert_eq!(
                    a, b,
                    "stepwise and direct aggregation disagree for ({s},{d})"
                );
            }
        }
    }

    #[test]
    fn empty_children_give_empty_parent() {
        let (layout, config) = setup();
        let children: Vec<CompressedMatrix> =
            (0..4).map(|_| CompressedMatrix::new(8, 1, 3, 4)).collect();
        let refs: Vec<&CompressedMatrix> = children.iter().collect();
        let parent = aggregate_matrices(&layout, &config, &refs, 1);
        assert!(parent.is_empty());
    }
}
