//! Parallel insertion pipeline (Section IV-C).
//!
//! The paper assigns each tree layer its own thread and lets only the leaf
//! thread touch the raw stream, so that order preservation is required only
//! at the item level. This implementation keeps leaf insertion on the ingest
//! thread (it is O(1) and cheap) and ships every group-close *aggregation*
//! job to a pool of per-layer worker threads over crossbeam channels:
//! aggregation — the expensive part of an insertion — is thereby removed from
//! the ingest critical path, which is what produces the throughput gain of
//! Fig. 20a.
//!
//! Queries remain correct while aggregations are in flight because the
//! boundary search only uses aggregates that have materialised and otherwise
//! descends to the leaves (see [`boundary`](crate::boundary)). Calling
//! [`ParallelHiggs::flush`] blocks until every outstanding aggregate is
//! installed, after which the structure is bit-for-bit equivalent to a
//! sequentially built [`HiggsSummary`].

use crate::config::HiggsConfig;
use crate::matrix::CompressedMatrix;
use crate::tree::HiggsSummary;
use crossbeam::channel::{unbounded, Receiver, Sender};
use higgs_common::hashing::FingerprintLayout;
use higgs_common::{
    Query, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection, VertexId, Weight,
};
use std::thread::JoinHandle;

/// An aggregation job shipped to a worker: the cloned leaf matrices (and
/// overflow blocks) covered by the node, plus the target layer. Cloning a
/// [`CompressedMatrix`] is a flat slab memcpy (no per-bucket allocations),
/// so snapshotting a job's sources stays cheap on the ingest thread.
struct Job {
    level: usize,
    index: usize,
    target_layer: u32,
    sources: Vec<CompressedMatrix>,
    layout: FingerprintLayout,
    config: HiggsConfig,
}

/// A finished aggregation.
struct JobResult {
    level: usize,
    index: usize,
    matrix: CompressedMatrix,
}

/// HIGGS with background aggregation workers.
pub struct ParallelHiggs {
    inner: HiggsSummary,
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<JobResult>,
    workers: Vec<JoinHandle<()>>,
    in_flight: usize,
}

impl ParallelHiggs {
    /// The core a shard's worker threads pin to under
    /// [`HiggsConfig::pin_workers`]: shards round-robin over the cores the
    /// process may run on, and `None` disables pinning.
    pub(crate) fn pin_core_for(config: &HiggsConfig, shard_index: usize) -> Option<usize> {
        config
            .pin_workers
            .then(|| shard_index % higgs_common::affinity::available_cores())
    }

    /// Creates a parallel summary with `workers` aggregation threads
    /// (the paper uses one per layer; 2–4 is plenty for laptop-scale runs).
    ///
    /// When [`HiggsConfig::pin_workers`] is set, the aggregation workers pin
    /// to core 0 (a standalone pipeline is shard 0 of a one-shard service).
    pub fn new(config: HiggsConfig, workers: usize) -> Self {
        Self::from_summary(HiggsSummary::with_deferred_aggregation(config), workers)
    }

    /// [`new`](Self::new) with an explicit pinning target: `Some(core)` pins
    /// every aggregation worker of this pipeline to that core (the sharded
    /// service passes each shard its own core).
    pub(crate) fn new_on_core(
        config: HiggsConfig,
        workers: usize,
        pin_core: Option<usize>,
    ) -> Self {
        Self::from_summary_on_core(
            HiggsSummary::with_deferred_aggregation(config),
            workers,
            pin_core,
        )
    }

    /// Wraps an existing summary (typically one restored from a snapshot,
    /// see [`snapshot`](crate::snapshot)) in a fresh aggregation pipeline
    /// with `workers` worker threads. The summary is switched to deferred
    /// aggregation; any pending jobs it carries are dispatched on the next
    /// insert or flush.
    ///
    /// Pinning follows the summary's own configuration (core 0 when
    /// `pin_workers` is set); note that restored configurations always carry
    /// `pin_workers: false` because pinning is never persisted.
    pub fn from_summary(summary: HiggsSummary, workers: usize) -> Self {
        let pin_core = Self::pin_core_for(summary.config(), 0);
        Self::from_summary_on_core(summary, workers, pin_core)
    }

    /// [`from_summary`](Self::from_summary) with an explicit pinning target.
    pub(crate) fn from_summary_on_core(
        mut summary: HiggsSummary,
        workers: usize,
        pin_core: Option<usize>,
    ) -> Self {
        summary.defer_aggregation = true;
        let workers = workers.max(1);
        let (job_tx, job_rx) = unbounded::<Job>();
        let (result_tx, result_rx) = unbounded::<JobResult>();
        let handles = (0..workers)
            .map(|_| {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                std::thread::spawn(move || {
                    if let Some(core) = pin_core {
                        // Best-effort: an unpinnable core just leaves the
                        // worker schedulable anywhere.
                        let _ = higgs_common::affinity::pin_to_core(core);
                    }
                    while let Ok(job) = job_rx.recv() {
                        let sources: Vec<&CompressedMatrix> = job.sources.iter().collect();
                        let matrix = crate::aggregate::aggregate_leaves_to_layer(
                            &job.layout,
                            &job.config,
                            &sources,
                            job.target_layer,
                        );
                        // The receiver disappearing just means the owner was
                        // dropped mid-flight; the result is no longer needed.
                        let _ = result_tx.send(JobResult {
                            level: job.level,
                            index: job.index,
                            matrix,
                        });
                    }
                })
            })
            .collect();
        Self {
            inner: summary,
            job_tx: Some(job_tx),
            result_rx,
            workers: handles,
            in_flight: 0,
        }
    }

    /// Read access to the underlying summary (aggregates may still be in
    /// flight; queries are nonetheless correct).
    pub fn summary(&self) -> &HiggsSummary {
        &self.inner
    }

    /// Number of aggregation jobs currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn dispatch_pending(&mut self) {
        let jobs = self.inner.take_pending_aggregations();
        for job in jobs {
            // If the worker pool is gone (the job channel was closed by
            // `shutdown`), fall back to inline aggregation so no node is ever
            // left unmaterialised — this keeps `flush` and late inserts safe
            // after shutdown instead of silently dropping the job.
            let Some(tx) = &self.job_tx else {
                let matrix = self.inner.compute_aggregation(job.level, job.index);
                self.inner.install_aggregation(job.level, job.index, matrix);
                continue;
            };
            let (first, last) = self.inner.leaf_span(job.level, job.index);
            let mut sources = Vec::new();
            for leaf in &self.inner.leaves[first..=last] {
                sources.push(leaf.matrix.clone());
                sources.extend(leaf.overflow.blocks().iter().cloned());
            }
            let payload = Job {
                level: job.level,
                index: job.index,
                target_layer: job.level as u32 + 2,
                sources,
                layout: *self.inner.layout(),
                config: *self.inner.config(),
            };
            if tx.send(payload).is_ok() {
                self.in_flight += 1;
            } else {
                let matrix = self.inner.compute_aggregation(job.level, job.index);
                self.inner.install_aggregation(job.level, job.index, matrix);
            }
        }
    }

    /// Installs every result already queued on the result channel without
    /// blocking.
    fn drain_results(&mut self) {
        while self.in_flight > 0 {
            match self.result_rx.try_recv() {
                Ok(result) => {
                    self.inner
                        .install_aggregation(result.level, result.index, result.matrix);
                    self.in_flight -= 1;
                }
                Err(_) => break,
            }
        }
    }

    /// Blocks until every outstanding aggregation has been installed.
    ///
    /// Idempotent — flushing an already-flushed pipeline returns immediately
    /// — and safe to call after the job channel has closed (e.g. after the
    /// worker pool shut down with results still in flight): results that can
    /// no longer arrive are recomputed inline, so the summary is always fully
    /// aggregated when this returns.
    pub fn flush(&mut self) {
        self.dispatch_pending();
        while self.in_flight > 0 {
            match self.result_rx.recv() {
                Ok(result) => {
                    self.inner
                        .install_aggregation(result.level, result.index, result.matrix);
                    self.in_flight -= 1;
                }
                Err(_) => {
                    // Every worker has exited and the queue is drained; the
                    // remaining in-flight results are unrecoverable. Rebuild
                    // the missing aggregates from the leaves instead of
                    // spinning forever.
                    self.in_flight = 0;
                    self.inner.materialize_missing_aggregations();
                }
            }
        }
    }

    /// Consumes the pipeline, flushes it, and returns the fully aggregated
    /// sequential summary.
    pub fn into_summary(mut self) -> HiggsSummary {
        self.flush();
        self.shutdown();
        std::mem::replace(
            &mut self.inner,
            HiggsSummary::new(HiggsConfig::paper_default()),
        )
    }

    fn shutdown(&mut self) {
        self.job_tx = None; // closing the channel stops the workers
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ParallelHiggs {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl TemporalGraphSummary for ParallelHiggs {
    fn insert(&mut self, edge: &StreamEdge) {
        self.inner.insert_edge(edge);
        self.dispatch_pending();
        self.drain_results();
    }

    fn delete(&mut self, edge: &StreamEdge) {
        // Deletions must see fully materialised ancestors to decrement them.
        self.flush();
        self.inner.delete_edge(edge);
    }

    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        self.inner.edge_query(src, dst, range)
    }

    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        self.inner.vertex_query(vertex, direction, range)
    }

    fn query(&self, query: &Query) -> Weight {
        // Forward to the inner summary so the plan-sharing overrides apply
        // (leaf-descent fallbacks keep results correct while aggregations
        // are still in flight).
        self.inner.query(query)
    }

    fn query_batch(&self, queries: &[Query]) -> Vec<Weight> {
        self.inner.query_batch(queries)
    }

    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }

    fn name(&self) -> &'static str {
        "HIGGS-parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HiggsConfig {
        HiggsConfig {
            d1: 4,
            f1_bits: 12,
            r_bits: 1,
            bucket_entries: 2,
            mapping_addresses: 2,
            overflow_blocks: true,
            shards: 1,
            plan_cache_capacity: 8,
            ingest_queue_cap: None,
            pin_workers: false,
            admission_tick: std::time::Duration::ZERO,
            service_queue_depth: None,
            journal_mode: crate::config::JournalMode::Off,
        }
    }

    fn edges(n: u64) -> Vec<StreamEdge> {
        (0..n)
            .map(|i| StreamEdge::new(i % 150, (i * 7) % 150, 1 + i % 3, i))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_after_flush() {
        let stream = edges(4_000);
        let mut sequential = HiggsSummary::new(tiny_config());
        let mut parallel = ParallelHiggs::new(tiny_config(), 3);
        for e in &stream {
            sequential.insert(e);
            parallel.insert(e);
        }
        parallel.flush();
        assert_eq!(parallel.in_flight(), 0);
        for (lo, hi) in [(0u64, 3_999u64), (100, 900), (2_000, 2_500)] {
            let r = TimeRange::new(lo, hi);
            for v in (0..150u64).step_by(13) {
                assert_eq!(
                    sequential.edge_query(v, (v * 7) % 150, r),
                    parallel.edge_query(v, (v * 7) % 150, r)
                );
                assert_eq!(
                    sequential.vertex_query(v, VertexDirection::Out, r),
                    parallel.vertex_query(v, VertexDirection::Out, r)
                );
            }
        }
    }

    #[test]
    fn queries_are_correct_while_jobs_in_flight() {
        let stream = edges(2_000);
        let mut sequential = HiggsSummary::new(tiny_config());
        let mut parallel = ParallelHiggs::new(tiny_config(), 2);
        for e in &stream {
            sequential.insert(e);
            parallel.insert(e);
        }
        // No flush: some aggregates may still be missing; answers must match
        // anyway because queries fall back to the leaves.
        let r = TimeRange::new(250, 1_750);
        for v in (0..150u64).step_by(29) {
            assert_eq!(
                sequential.edge_query(v, (v * 7) % 150, r),
                parallel.edge_query(v, (v * 7) % 150, r)
            );
        }
    }

    #[test]
    fn into_summary_produces_fully_aggregated_tree() {
        let mut parallel = ParallelHiggs::new(tiny_config(), 2);
        for e in edges(3_000) {
            parallel.insert(&e);
        }
        let summary = parallel.into_summary();
        assert!(summary
            .internals
            .iter()
            .flatten()
            .all(|n| n.matrix.is_some()));
    }

    #[test]
    fn delete_through_pipeline() {
        let mut parallel = ParallelHiggs::new(tiny_config(), 2);
        let stream = edges(1_000);
        for e in &stream {
            parallel.insert(e);
        }
        let target = &stream[123];
        let before = parallel.edge_query(target.src, target.dst, TimeRange::all());
        parallel.delete(target);
        let after = parallel.edge_query(target.src, target.dst, TimeRange::all());
        assert_eq!(after, before - target.weight);
    }

    #[test]
    fn name_and_space() {
        let p = ParallelHiggs::new(tiny_config(), 1);
        assert_eq!(p.name(), "HIGGS-parallel");
        assert_eq!(p.summary().leaf_count(), 0);
        assert!(p.space_bytes() > 0);
    }

    #[test]
    fn flush_is_idempotent_and_safe_after_channel_close() {
        // Regression test for the drop/flush ordering bug: flushing used to
        // spin forever once the result channel disconnected with jobs still
        // counted in flight, and jobs dispatched after shutdown were silently
        // dropped, leaving nodes unmaterialised.
        let stream = edges(6_000);
        let mut sequential = HiggsSummary::new(tiny_config());
        let mut parallel = ParallelHiggs::new(tiny_config(), 2);
        for e in &stream[..3_000] {
            sequential.insert(e);
            parallel.insert(e);
        }
        parallel.flush();
        parallel.flush(); // double flush must be a no-op, not a hang

        // Close the job channel with work still streaming in afterwards: the
        // pipeline must aggregate inline instead of losing jobs or hanging.
        parallel.shutdown();
        for e in &stream[3_000..] {
            sequential.insert(e);
            parallel.insert(e);
        }
        parallel.flush();
        parallel.flush();
        assert_eq!(parallel.in_flight(), 0);
        assert!(
            parallel
                .summary()
                .internals
                .iter()
                .flatten()
                .all(|n| n.matrix.is_some()),
            "every aggregate must be materialised after flush"
        );
        for (lo, hi) in [(0u64, 5_999u64), (1_000, 4_500)] {
            let r = TimeRange::new(lo, hi);
            for v in (0..150u64).step_by(17) {
                assert_eq!(
                    sequential.edge_query(v, (v * 7) % 150, r),
                    parallel.edge_query(v, (v * 7) % 150, r)
                );
            }
        }
    }

    #[test]
    fn drop_mid_stream_does_not_hang() {
        // Dropping the pipeline with aggregation jobs still in flight (no
        // flush) must terminate: workers drain the job queue, their results
        // go unread, and the join in `shutdown` returns.
        let mut parallel = ParallelHiggs::new(tiny_config(), 3);
        for e in edges(5_000) {
            parallel.insert(&e);
        }
        drop(parallel);
    }

    #[test]
    fn flush_recovers_when_results_are_unreachable() {
        // Force the pathological interleaving directly: jobs dispatched, then
        // the workers vanish before the results are drained. `flush` must
        // rebuild the missing aggregates inline rather than spin.
        let mut parallel = ParallelHiggs::new(tiny_config(), 1);
        for e in edges(4_000) {
            parallel.insert(&e);
        }
        // Close the channel and join workers while results may be queued but
        // unread; then drop the queued results by draining the receiver dry.
        parallel.job_tx = None;
        for handle in parallel.workers.drain(..) {
            handle.join().expect("worker must exit cleanly");
        }
        while parallel.result_rx.try_recv().is_ok() {}
        let lost = parallel.in_flight;
        parallel.flush();
        assert_eq!(parallel.in_flight(), 0, "flush must converge (lost {lost})");
        let sequential = {
            let mut s = HiggsSummary::new(tiny_config());
            for e in edges(4_000) {
                s.insert(&e);
            }
            s
        };
        for v in (0..150u64).step_by(13) {
            assert_eq!(
                sequential.edge_query(v, (v * 7) % 150, TimeRange::all()),
                parallel.edge_query(v, (v * 7) % 150, TimeRange::all())
            );
        }
    }
}
