//! Parallel insertion pipeline (Section IV-C).
//!
//! The paper assigns each tree layer its own thread and lets only the leaf
//! thread touch the raw stream, so that order preservation is required only
//! at the item level. This implementation keeps leaf insertion on the ingest
//! thread (it is O(1) and cheap) and ships every group-close *aggregation*
//! job to a pool of per-layer worker threads over crossbeam channels:
//! aggregation — the expensive part of an insertion — is thereby removed from
//! the ingest critical path, which is what produces the throughput gain of
//! Fig. 20a.
//!
//! Queries remain correct while aggregations are in flight because the
//! boundary search only uses aggregates that have materialised and otherwise
//! descends to the leaves (see [`boundary`](crate::boundary)). Calling
//! [`ParallelHiggs::flush`] blocks until every outstanding aggregate is
//! installed, after which the structure is bit-for-bit equivalent to a
//! sequentially built [`HiggsSummary`].

use crate::config::HiggsConfig;
use crate::matrix::CompressedMatrix;
use crate::tree::HiggsSummary;
use crossbeam::channel::{unbounded, Receiver, Sender};
use higgs_common::hashing::FingerprintLayout;
use higgs_common::{
    Query, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection, VertexId, Weight,
};
use std::thread::JoinHandle;

/// An aggregation job shipped to a worker: the cloned leaf matrices (and
/// overflow blocks) covered by the node, plus the target layer. Cloning a
/// [`CompressedMatrix`] is a flat slab memcpy (no per-bucket allocations),
/// so snapshotting a job's sources stays cheap on the ingest thread.
struct Job {
    level: usize,
    index: usize,
    target_layer: u32,
    sources: Vec<CompressedMatrix>,
    layout: FingerprintLayout,
    config: HiggsConfig,
}

/// A finished aggregation.
struct JobResult {
    level: usize,
    index: usize,
    matrix: CompressedMatrix,
}

/// HIGGS with background aggregation workers.
pub struct ParallelHiggs {
    inner: HiggsSummary,
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<JobResult>,
    workers: Vec<JoinHandle<()>>,
    in_flight: usize,
}

impl ParallelHiggs {
    /// Creates a parallel summary with `workers` aggregation threads
    /// (the paper uses one per layer; 2–4 is plenty for laptop-scale runs).
    pub fn new(config: HiggsConfig, workers: usize) -> Self {
        let workers = workers.max(1);
        let (job_tx, job_rx) = unbounded::<Job>();
        let (result_tx, result_rx) = unbounded::<JobResult>();
        let handles = (0..workers)
            .map(|_| {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        let sources: Vec<&CompressedMatrix> = job.sources.iter().collect();
                        let matrix = crate::aggregate::aggregate_leaves_to_layer(
                            &job.layout,
                            &job.config,
                            &sources,
                            job.target_layer,
                        );
                        // The receiver disappearing just means the owner was
                        // dropped mid-flight; the result is no longer needed.
                        let _ = result_tx.send(JobResult {
                            level: job.level,
                            index: job.index,
                            matrix,
                        });
                    }
                })
            })
            .collect();
        Self {
            inner: HiggsSummary::with_deferred_aggregation(config),
            job_tx: Some(job_tx),
            result_rx,
            workers: handles,
            in_flight: 0,
        }
    }

    /// Read access to the underlying summary (aggregates may still be in
    /// flight; queries are nonetheless correct).
    pub fn summary(&self) -> &HiggsSummary {
        &self.inner
    }

    /// Number of aggregation jobs currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn dispatch_pending(&mut self) {
        let jobs = self.inner.take_pending_aggregations();
        for job in jobs {
            let (first, last) = self.inner.leaf_span(job.level, job.index);
            let mut sources = Vec::new();
            for leaf in &self.inner.leaves[first..=last] {
                sources.push(leaf.matrix.clone());
                sources.extend(leaf.overflow.blocks().iter().cloned());
            }
            let payload = Job {
                level: job.level,
                index: job.index,
                target_layer: job.level as u32 + 2,
                sources,
                layout: *self.inner.layout(),
                config: *self.inner.config(),
            };
            if let Some(tx) = &self.job_tx {
                if tx.send(payload).is_ok() {
                    self.in_flight += 1;
                }
            }
        }
    }

    fn drain_results(&mut self, block: bool) {
        loop {
            let result = if block && self.in_flight > 0 {
                match self.result_rx.recv() {
                    Ok(r) => r,
                    Err(_) => break,
                }
            } else {
                match self.result_rx.try_recv() {
                    Ok(r) => r,
                    Err(_) => break,
                }
            };
            self.inner
                .install_aggregation(result.level, result.index, result.matrix);
            self.in_flight -= 1;
            if self.in_flight == 0 {
                break;
            }
        }
    }

    /// Blocks until every outstanding aggregation has been installed.
    pub fn flush(&mut self) {
        self.dispatch_pending();
        while self.in_flight > 0 {
            self.drain_results(true);
        }
    }

    /// Consumes the pipeline, flushes it, and returns the fully aggregated
    /// sequential summary.
    pub fn into_summary(mut self) -> HiggsSummary {
        self.flush();
        self.shutdown();
        std::mem::replace(
            &mut self.inner,
            HiggsSummary::new(HiggsConfig::paper_default()),
        )
    }

    fn shutdown(&mut self) {
        self.job_tx = None; // closing the channel stops the workers
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ParallelHiggs {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl TemporalGraphSummary for ParallelHiggs {
    fn insert(&mut self, edge: &StreamEdge) {
        self.inner.insert_edge(edge);
        self.dispatch_pending();
        self.drain_results(false);
    }

    fn delete(&mut self, edge: &StreamEdge) {
        // Deletions must see fully materialised ancestors to decrement them.
        self.flush();
        self.inner.delete_edge(edge);
    }

    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        self.inner.edge_query(src, dst, range)
    }

    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        self.inner.vertex_query(vertex, direction, range)
    }

    fn query(&self, query: &Query) -> Weight {
        // Forward to the inner summary so the plan-sharing overrides apply
        // (leaf-descent fallbacks keep results correct while aggregations
        // are still in flight).
        self.inner.query(query)
    }

    fn query_batch(&self, queries: &[Query]) -> Vec<Weight> {
        self.inner.query_batch(queries)
    }

    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }

    fn name(&self) -> &'static str {
        "HIGGS-parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HiggsConfig {
        HiggsConfig {
            d1: 4,
            f1_bits: 12,
            r_bits: 1,
            bucket_entries: 2,
            mapping_addresses: 2,
            overflow_blocks: true,
        }
    }

    fn edges(n: u64) -> Vec<StreamEdge> {
        (0..n)
            .map(|i| StreamEdge::new(i % 150, (i * 7) % 150, 1 + i % 3, i))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_after_flush() {
        let stream = edges(4_000);
        let mut sequential = HiggsSummary::new(tiny_config());
        let mut parallel = ParallelHiggs::new(tiny_config(), 3);
        for e in &stream {
            sequential.insert(e);
            parallel.insert(e);
        }
        parallel.flush();
        assert_eq!(parallel.in_flight(), 0);
        for (lo, hi) in [(0u64, 3_999u64), (100, 900), (2_000, 2_500)] {
            let r = TimeRange::new(lo, hi);
            for v in (0..150u64).step_by(13) {
                assert_eq!(
                    sequential.edge_query(v, (v * 7) % 150, r),
                    parallel.edge_query(v, (v * 7) % 150, r)
                );
                assert_eq!(
                    sequential.vertex_query(v, VertexDirection::Out, r),
                    parallel.vertex_query(v, VertexDirection::Out, r)
                );
            }
        }
    }

    #[test]
    fn queries_are_correct_while_jobs_in_flight() {
        let stream = edges(2_000);
        let mut sequential = HiggsSummary::new(tiny_config());
        let mut parallel = ParallelHiggs::new(tiny_config(), 2);
        for e in &stream {
            sequential.insert(e);
            parallel.insert(e);
        }
        // No flush: some aggregates may still be missing; answers must match
        // anyway because queries fall back to the leaves.
        let r = TimeRange::new(250, 1_750);
        for v in (0..150u64).step_by(29) {
            assert_eq!(
                sequential.edge_query(v, (v * 7) % 150, r),
                parallel.edge_query(v, (v * 7) % 150, r)
            );
        }
    }

    #[test]
    fn into_summary_produces_fully_aggregated_tree() {
        let mut parallel = ParallelHiggs::new(tiny_config(), 2);
        for e in edges(3_000) {
            parallel.insert(&e);
        }
        let summary = parallel.into_summary();
        assert!(summary
            .internals
            .iter()
            .flatten()
            .all(|n| n.matrix.is_some()));
    }

    #[test]
    fn delete_through_pipeline() {
        let mut parallel = ParallelHiggs::new(tiny_config(), 2);
        let stream = edges(1_000);
        for e in &stream {
            parallel.insert(e);
        }
        let target = &stream[123];
        let before = parallel.edge_query(target.src, target.dst, TimeRange::all());
        parallel.delete(target);
        let after = parallel.edge_query(target.src, target.dst, TimeRange::all());
        assert_eq!(after, before - target.weight);
    }

    #[test]
    fn name_and_space() {
        let p = ParallelHiggs::new(tiny_config(), 1);
        assert_eq!(p.name(), "HIGGS-parallel");
        assert_eq!(p.summary().leaf_count(), 0);
        assert!(p.space_bytes() > 0);
    }
}
