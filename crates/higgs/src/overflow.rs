//! Overflow blocks (Section IV-C).
//!
//! When an edge insertion fails at the current leaf and the edge carries the
//! *same timestamp* as the previously inserted edge, opening a new leaf would
//! make the parent's separating key ambiguous (two leaves starting at the
//! same timestamp). Instead, the edge is absorbed by an overflow block — a
//! small compressed matrix chained to the leaf — keeping the temporal
//! partition of the stream exact and thereby improving query accuracy.
//!
//! Blocks share [`CompressedMatrix`]'s flat slab layout (see
//! [`matrix`](crate::matrix)), so each block is a single allocation and
//! chain scans stay cache-friendly; a chain insert probes blocks in creation
//! order and allocates a new block only after every existing block rejected
//! the edge, preserving first-block-wins attribution for deletes/queries.

use crate::matrix::{CompressedMatrix, OffsetFilter, ProbeScratch};

/// A chain of small overflow matrices attached to one leaf node.
#[derive(Clone, Debug, Default)]
pub struct OverflowChain {
    blocks: Vec<CompressedMatrix>,
    side: u64,
    bucket_entries: usize,
    mapping: u32,
}

impl OverflowChain {
    /// Creates an empty chain whose blocks will be `side × side` matrices
    /// with `bucket_entries` entries per bucket and `mapping` candidate
    /// addresses per vertex.
    pub fn new(side: u64, bucket_entries: usize, mapping: u32) -> Self {
        Self {
            blocks: Vec::new(),
            side,
            bucket_entries,
            mapping,
        }
    }

    /// Number of overflow blocks allocated so far.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the chain has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Inserts an edge into the chain, allocating a new block if every
    /// existing block rejects it. Never fails.
    pub fn insert(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        time_offset: u32,
        weight: i64,
    ) {
        for block in &mut self.blocks {
            if block.try_insert(
                addr_src,
                addr_dst,
                fp_src,
                fp_dst,
                Some(time_offset),
                weight,
            ) {
                return;
            }
        }
        let mut block = CompressedMatrix::new(self.side, 1, self.bucket_entries, self.mapping);
        let inserted = block.try_insert(
            addr_src,
            addr_dst,
            fp_src,
            fp_dst,
            Some(time_offset),
            weight,
        );
        debug_assert!(
            inserted,
            "insertion into an empty overflow block cannot fail"
        );
        self.blocks.push(block);
    }

    /// Attempts to decrement a previously inserted edge anywhere in the chain.
    pub fn delete(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        filter: OffsetFilter,
        weight: i64,
    ) -> bool {
        self.blocks
            .iter_mut()
            .any(|b| b.try_delete(addr_src, addr_dst, fp_src, fp_dst, filter, weight))
    }

    /// Edge query over every block in the chain.
    pub fn edge_weight(
        &self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        filter: OffsetFilter,
    ) -> u64 {
        let mut scratch = ProbeScratch::new();
        self.edge_weight_scratch(&mut scratch, addr_src, addr_dst, fp_src, fp_dst, filter)
    }

    /// [`edge_weight`](Self::edge_weight) with a caller-provided
    /// [`ProbeScratch`]. Every block shares the chain's geometry, so the
    /// candidate fill is computed once for the whole chain.
    pub(crate) fn edge_weight_scratch(
        &self,
        scratch: &mut ProbeScratch,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        filter: OffsetFilter,
    ) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.edge_weight_scratch(scratch, addr_src, addr_dst, fp_src, fp_dst, filter))
            .sum()
    }

    /// Source-vertex query over every block in the chain.
    pub fn src_weight(&self, addr_src: u64, fp_src: u32, filter: OffsetFilter) -> u64 {
        let mut scratch = ProbeScratch::new();
        self.src_weight_scratch(&mut scratch, addr_src, fp_src, filter)
    }

    /// [`src_weight`](Self::src_weight) with a caller-provided
    /// [`ProbeScratch`].
    pub(crate) fn src_weight_scratch(
        &self,
        scratch: &mut ProbeScratch,
        addr_src: u64,
        fp_src: u32,
        filter: OffsetFilter,
    ) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.src_weight_scratch(scratch, addr_src, fp_src, filter))
            .sum()
    }

    /// Destination-vertex query over every block in the chain.
    pub fn dst_weight(&self, addr_dst: u64, fp_dst: u32, filter: OffsetFilter) -> u64 {
        let mut scratch = ProbeScratch::new();
        self.dst_weight_scratch(&mut scratch, addr_dst, fp_dst, filter)
    }

    /// [`dst_weight`](Self::dst_weight) with a caller-provided
    /// [`ProbeScratch`].
    pub(crate) fn dst_weight_scratch(
        &self,
        scratch: &mut ProbeScratch,
        addr_dst: u64,
        fp_dst: u32,
        filter: OffsetFilter,
    ) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.dst_weight_scratch(scratch, addr_dst, fp_dst, filter))
            .sum()
    }

    /// The blocks themselves (used during aggregation so overflow data is
    /// folded into ancestor matrices).
    pub fn blocks(&self) -> &[CompressedMatrix] {
        &self.blocks
    }

    /// The chain's block geometry `(side, bucket_entries, mapping)` — what
    /// [`OverflowChain::new`] was called with (used by the snapshot codec).
    pub(crate) fn geometry(&self) -> (u64, usize, u32) {
        (self.side, self.bucket_entries, self.mapping)
    }

    /// Rebuilds a chain from persisted geometry and blocks (snapshot
    /// restore); block order is preserved because chain inserts probe blocks
    /// in creation order and earlier blocks win attribution.
    pub(crate) fn from_restored_parts(
        side: u64,
        bucket_entries: usize,
        mapping: u32,
        blocks: Vec<CompressedMatrix>,
    ) -> Self {
        Self {
            blocks,
            side,
            bucket_entries,
            mapping,
        }
    }

    /// Memory footprint in bytes.
    pub fn space_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(CompressedMatrix::space_bytes)
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_never_fails_and_grows_blocks() {
        let mut chain = OverflowChain::new(2, 1, 1);
        for k in 0..50u32 {
            chain.insert(0, 0, k, k, 0, 1);
        }
        assert!(chain.len() > 1, "chain must grow under pressure");
        for k in 0..50u32 {
            assert_eq!(chain.edge_weight(0, 0, k, k, None), 1);
        }
    }

    #[test]
    fn vertex_queries_cover_all_blocks() {
        let mut chain = OverflowChain::new(2, 1, 1);
        for k in 0..10u32 {
            chain.insert(1, 0, 7, k, 0, 2);
        }
        assert_eq!(chain.src_weight(1, 7, None), 20);
        assert_eq!(chain.dst_weight(0, 3, None), 2);
    }

    #[test]
    fn delete_finds_entry_in_any_block() {
        let mut chain = OverflowChain::new(2, 1, 1);
        for k in 0..20u32 {
            chain.insert(0, 0, k, k, 5, 3);
        }
        assert!(chain.delete(0, 0, 15, 15, Some((5, 5)), 3));
        assert_eq!(chain.edge_weight(0, 0, 15, 15, None), 0);
        assert!(!chain.delete(0, 0, 99, 99, None, 1));
    }

    #[test]
    fn empty_chain_queries_return_zero() {
        let chain = OverflowChain::new(4, 3, 4);
        assert!(chain.is_empty());
        assert_eq!(chain.edge_weight(0, 0, 1, 1, None), 0);
        assert_eq!(chain.src_weight(0, 1, None), 0);
        assert_eq!(chain.space_bytes(), std::mem::size_of::<OverflowChain>());
    }
}
