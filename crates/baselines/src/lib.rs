//! # higgs-baselines
//!
//! Temporal-range-query (TRQ) baselines from the HIGGS evaluation
//! (Section VI-A): the state-of-the-art competitors that HIGGS is compared
//! against. All of them follow the *top-down, temporal-domain-based*
//! multi-layer architecture of Fig. 1a — each layer summarises the whole
//! stream at one temporal granularity, and a query range is decomposed into
//! per-layer sub-ranges — in contrast to HIGGS's bottom-up, item-based tree.
//!
//! * [`Pgss`] — PGSS (WWW'23): TCM-style matrices whose buckets hold one
//!   counter per dyadic time granularity.
//! * [`Horae`] — Horae (ICDE'22): one fingerprinted (GSS-style) layer per
//!   dyadic granularity, with the time prefix folded into the edge key.
//!   [`Horae::compact`] builds the space-optimised Horae-cpt variant.
//! * [`AuxoTime`] — the stronger baseline constructed in the paper by
//!   combining Auxo's prefix-embedded tree with Horae's range decomposition.
//!   [`AuxoTime::compact`] builds AuxoTime-cpt.
//!
//! Every baseline implements
//! [`TemporalGraphSummary`](higgs_common::TemporalGraphSummary), so the
//! benchmark harness can drive HIGGS and the baselines through identical
//! query code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auxotime;
pub mod decompose;
pub mod horae;
pub mod pgss;

pub use auxotime::{AuxoTime, AuxoTimeConfig};
pub use decompose::{granularities_for_span, RangeDecomposer};
pub use horae::{Horae, HoraeConfig};
pub use pgss::{Pgss, PgssConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use higgs_common::{
        Query, StreamEdge, SummaryExt, TemporalGraphSummary, TimeRange, VertexDirection,
    };

    fn baselines() -> Vec<Box<dyn TemporalGraphSummary>> {
        let slices = 1u64 << 12;
        vec![
            Box::new(Pgss::new(PgssConfig::for_stream(5_000, slices))),
            Box::new(Horae::new(HoraeConfig::for_stream(5_000, slices))),
            Box::new(Horae::compact(HoraeConfig::for_stream(5_000, slices))),
            Box::new(AuxoTime::new(AuxoTimeConfig::for_stream(5_000, slices))),
            Box::new(AuxoTime::compact(AuxoTimeConfig::for_stream(5_000, slices))),
        ]
    }

    #[test]
    fn typed_query_surface_matches_primitives_for_every_baseline() {
        // Baselines inherit the default `query`/`query_batch` trait methods;
        // they must agree with the per-primitive SummaryExt composition so
        // the harness can drive all competitors through one surface.
        let edges: Vec<StreamEdge> = (0..2_000u64)
            .map(|i| StreamEdge::new(i % 30, (i * 7) % 30, 1 + i % 3, i * 2))
            .collect();
        let windows = [
            TimeRange::new(0, 3_999),
            TimeRange::new(500, 1_200),
            TimeRange::new(2_000, 2_000),
        ];
        for mut summary in baselines() {
            summary.insert_all(&edges);
            let mut batch = Vec::new();
            for &range in &windows {
                batch.push(Query::edge(3, 21, range));
                batch.push(Query::vertex(5, VertexDirection::Out, range));
                batch.push(Query::path(vec![1, 7, 19, 13], range));
                batch.push(Query::subgraph(vec![(2, 14), (4, 28)], range));
            }
            let batched = summary.query_batch(&batch);
            let looped: Vec<u64> = batch.iter().map(|q| summary.query(q)).collect();
            assert_eq!(batched, looped, "{}", summary.name());
            for (i, q) in batch.iter().enumerate() {
                let primitive = match q {
                    Query::Edge(e) => summary.run_edge_query(e),
                    Query::Vertex(v) => summary.run_vertex_query(v),
                    Query::Path(p) => summary.path_query(p),
                    Query::Subgraph(s) => summary.subgraph_query(s),
                };
                assert_eq!(batched[i], primitive, "{} query #{i}", summary.name());
            }
        }
    }
}
