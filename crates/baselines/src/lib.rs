//! # higgs-baselines
//!
//! Temporal-range-query (TRQ) baselines from the HIGGS evaluation
//! (Section VI-A): the state-of-the-art competitors that HIGGS is compared
//! against. All of them follow the *top-down, temporal-domain-based*
//! multi-layer architecture of Fig. 1a — each layer summarises the whole
//! stream at one temporal granularity, and a query range is decomposed into
//! per-layer sub-ranges — in contrast to HIGGS's bottom-up, item-based tree.
//!
//! * [`Pgss`] — PGSS (WWW'23): TCM-style matrices whose buckets hold one
//!   counter per dyadic time granularity.
//! * [`Horae`] — Horae (ICDE'22): one fingerprinted (GSS-style) layer per
//!   dyadic granularity, with the time prefix folded into the edge key.
//!   [`Horae::compact`] builds the space-optimised Horae-cpt variant.
//! * [`AuxoTime`] — the stronger baseline constructed in the paper by
//!   combining Auxo's prefix-embedded tree with Horae's range decomposition.
//!   [`AuxoTime::compact`] builds AuxoTime-cpt.
//!
//! Every baseline implements
//! [`TemporalGraphSummary`](higgs_common::TemporalGraphSummary), so the
//! benchmark harness can drive HIGGS and the baselines through identical
//! query code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auxotime;
pub mod decompose;
pub mod horae;
pub mod pgss;

pub use auxotime::{AuxoTime, AuxoTimeConfig};
pub use decompose::{granularities_for_span, RangeDecomposer};
pub use horae::{Horae, HoraeConfig};
pub use pgss::{Pgss, PgssConfig};
