//! Horae (Chen et al., ICDE'22): "A graph stream summarization structure for
//! efficient temporal range query".
//!
//! Horae is the state-of-the-art top-down baseline: one GSS-style
//! fingerprinted layer per dyadic temporal granularity, with the time prefix
//! (the dyadic block id) encoded into the edge key of that layer. A temporal
//! range query is decomposed into per-granularity sub-ranges (Fig. 1a in the
//! HIGGS paper) and each sub-range becomes one edge/vertex query on the
//! corresponding layer.
//!
//! The compact variant **Horae-cpt** keeps only every second granularity,
//! halving the number of layers (and roughly the space) at the cost of more
//! sub-range queries per temporal range — which is exactly why the paper
//! finds Horae-cpt to be smaller but less accurate and slower to query.

use crate::decompose::{clamp_to_domain, granularities_for_span, RangeDecomposer};
use higgs_common::hashing::splitmix64;
use higgs_common::{
    StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection, VertexId, Weight,
};
use higgs_sketch::gss::{Gss, GssConfig};
use higgs_sketch::GraphSketch;

/// Configuration of a [`Horae`] summary.
#[derive(Clone, Copy, Debug)]
pub struct HoraeConfig {
    /// Side length of each layer's fingerprinted matrix (power of two).
    pub side: usize,
    /// Fingerprint bits per endpoint.
    pub fingerprint_bits: u32,
    /// Square-hashing candidate positions per endpoint.
    pub candidates: u32,
    /// Number of time slices the stream may span.
    pub time_slices: u64,
    /// Keep only every `granularity_step`-th layer (1 = full Horae,
    /// 2 = Horae-cpt).
    pub granularity_step: u32,
}

impl Default for HoraeConfig {
    fn default() -> Self {
        Self {
            side: 256,
            fingerprint_bits: 16,
            candidates: 4,
            time_slices: 1 << 16,
            granularity_step: 1,
        }
    }
}

impl HoraeConfig {
    /// Sizes the layers for an expected number of stream items.
    pub fn for_stream(expected_edges: usize, time_slices: u64) -> Self {
        let cells_needed = (expected_edges / 2).max(64);
        let side = ((cells_needed as f64).sqrt().ceil() as usize).next_power_of_two();
        Self {
            side,
            time_slices,
            ..Default::default()
        }
    }

    /// The compact (-cpt) version of this configuration.
    pub fn compact(mut self) -> Self {
        self.granularity_step = 2;
        self
    }
}

/// The Horae temporal graph summary (and, via [`Horae::compact`], Horae-cpt).
#[derive(Clone, Debug)]
pub struct Horae {
    config: HoraeConfig,
    decomposer: RangeDecomposer,
    /// Largest timestamp observed so far (query ranges are clamped to it).
    max_seen: u64,
    layers: Vec<Gss>,
    compact: bool,
}

impl Horae {
    /// Creates a full Horae summary.
    pub fn new(config: HoraeConfig) -> Self {
        Self::build(config, false)
    }

    /// Creates the space-optimised Horae-cpt variant.
    pub fn compact(config: HoraeConfig) -> Self {
        Self::build(config.compact(), true)
    }

    fn build(config: HoraeConfig, compact: bool) -> Self {
        let max_g = granularities_for_span(config.time_slices);
        let decomposer = if config.granularity_step <= 1 {
            RangeDecomposer::full(max_g)
        } else {
            RangeDecomposer::compact(max_g, config.granularity_step)
        };
        let layers = decomposer
            .granularities()
            .iter()
            .map(|_| {
                Gss::new(GssConfig {
                    side: config.side,
                    fingerprint_bits: config.fingerprint_bits,
                    candidates: config.candidates,
                })
            })
            .collect();
        Self {
            config,
            decomposer,
            layers,
            max_seen: 0,
            compact,
        }
    }

    /// Number of granularity layers physically present.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The configuration the summary was built with.
    pub fn config(&self) -> HoraeConfig {
        self.config
    }

    /// Encodes the time prefix (granularity + dyadic block) into a vertex
    /// key, reproducing Horae's time-prefix embedding.
    #[inline]
    fn fold(key: VertexId, granularity: u32, block: u64) -> u64 {
        key ^ splitmix64(block.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ (u64::from(granularity) << 56))
    }

    fn apply(&mut self, edge: &StreamEdge, delete: bool) {
        if !delete {
            self.max_seen = self.max_seen.max(edge.timestamp);
        }
        for &g in &self.decomposer.granularities() {
            let block = edge.timestamp >> g;
            let s = Self::fold(edge.src, g, block);
            let d = Self::fold(edge.dst, g, block);
            let idx = self.decomposer.layer_index(g);
            if delete {
                self.layers[idx].delete(s, d, edge.weight);
            } else {
                self.layers[idx].insert(s, d, edge.weight);
            }
        }
    }
}

impl TemporalGraphSummary for Horae {
    fn insert(&mut self, edge: &StreamEdge) {
        self.apply(edge, false);
    }

    fn delete(&mut self, edge: &StreamEdge) {
        self.apply(edge, true);
    }

    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        let Some(range) = clamp_to_domain(range, self.max_seen) else {
            return 0;
        };
        self.decomposer
            .decompose(range)
            .into_iter()
            .map(|(g, block)| {
                let layer = &self.layers[self.decomposer.layer_index(g)];
                layer.edge_weight(Self::fold(src, g, block), Self::fold(dst, g, block))
            })
            .sum()
    }

    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        let Some(range) = clamp_to_domain(range, self.max_seen) else {
            return 0;
        };
        self.decomposer
            .decompose(range)
            .into_iter()
            .map(|(g, block)| {
                let layer = &self.layers[self.decomposer.layer_index(g)];
                let key = Self::fold(vertex, g, block);
                match direction {
                    VertexDirection::Out => layer.src_weight(key),
                    VertexDirection::In => layer.dst_weight(key),
                }
            })
            .sum()
    }

    fn space_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(GraphSketch::space_bytes)
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    fn name(&self) -> &'static str {
        if self.compact {
            "Horae-cpt"
        } else {
            "Horae"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HoraeConfig {
        HoraeConfig {
            side: 64,
            fingerprint_bits: 16,
            candidates: 2,
            time_slices: 1 << 10,
            granularity_step: 1,
        }
    }

    #[test]
    fn edge_query_over_range() {
        let mut h = Horae::new(cfg());
        h.insert(&StreamEdge::new(1, 2, 5, 10));
        h.insert(&StreamEdge::new(1, 2, 3, 20));
        h.insert(&StreamEdge::new(1, 2, 7, 900));
        assert_eq!(h.edge_query(1, 2, TimeRange::new(0, 100)), 8);
        assert_eq!(h.edge_query(1, 2, TimeRange::new(0, 1023)), 15);
        assert_eq!(h.edge_query(1, 2, TimeRange::new(890, 910)), 7);
    }

    #[test]
    fn vertex_query_over_range() {
        let mut h = Horae::new(cfg());
        h.insert(&StreamEdge::new(1, 2, 5, 10));
        h.insert(&StreamEdge::new(1, 3, 2, 11));
        h.insert(&StreamEdge::new(4, 2, 9, 500));
        assert!(h.vertex_query(1, VertexDirection::Out, TimeRange::new(0, 100)) >= 7);
        assert!(h.vertex_query(2, VertexDirection::In, TimeRange::new(0, 1023)) >= 14);
    }

    #[test]
    fn compact_variant_uses_fewer_layers_and_less_space() {
        let full = Horae::new(cfg());
        let cpt = Horae::compact(cfg());
        assert!(cpt.layer_count() < full.layer_count());
        assert!(cpt.space_bytes() < full.space_bytes());
        assert_eq!(full.name(), "Horae");
        assert_eq!(cpt.name(), "Horae-cpt");
    }

    #[test]
    fn compact_variant_is_still_correct_on_clean_streams() {
        let mut cpt = Horae::compact(cfg());
        cpt.insert(&StreamEdge::new(10, 20, 4, 100));
        cpt.insert(&StreamEdge::new(10, 20, 6, 612));
        assert_eq!(cpt.edge_query(10, 20, TimeRange::new(0, 1023)), 10);
        assert_eq!(cpt.edge_query(10, 20, TimeRange::new(90, 110)), 4);
    }

    #[test]
    fn never_underestimates() {
        let mut h = Horae::new(cfg());
        let mut truth = std::collections::HashMap::new();
        for i in 0..2_000u64 {
            let e = StreamEdge::new(i % 60, (i * 7) % 60, 1, i % 1024);
            h.insert(&e);
            *truth.entry((e.src, e.dst)).or_insert(0u64) += 1;
        }
        for (&(s, d), &w) in truth.iter().take(200) {
            assert!(h.edge_query(s, d, TimeRange::new(0, 1023)) >= w);
        }
    }

    #[test]
    fn delete_reverses_insert() {
        let mut h = Horae::new(cfg());
        let e = StreamEdge::new(3, 9, 2, 77);
        h.insert(&e);
        h.delete(&e);
        assert_eq!(h.edge_query(3, 9, TimeRange::new(0, 1023)), 0);
    }

    #[test]
    fn out_of_range_query_is_zero() {
        let mut h = Horae::new(cfg());
        h.insert(&StreamEdge::new(1, 2, 5, 10));
        assert_eq!(h.edge_query(1, 2, TimeRange::new(512, 1023)), 0);
    }

    #[test]
    fn config_for_stream_scales() {
        let a = HoraeConfig::for_stream(10_000, 1 << 12);
        let b = HoraeConfig::for_stream(500_000, 1 << 12);
        assert!(b.side > a.side);
    }
}
