//! PGSS (Jia et al., WWW'23): "Persistent graph stream summarization for
//! real-time graph analytics".
//!
//! PGSS extends TCM with persistence: conceptually, each matrix bucket keeps
//! one counter per temporal granularity, so a temporal range query can be
//! answered by decomposing the range into dyadic blocks and summing the
//! corresponding counters. This implementation realises the per-bucket
//! counter arrays as one TCM-style counter layer per granularity, with the
//! dyadic block id folded into the bucket hash — an equivalent memory layout
//! that keeps the per-granularity counters addressable in O(1).
//!
//! PGSS carries no fingerprints, so (as Section VI-B/VI-C observes) its query
//! latency is competitive but its accuracy is the worst of the field: every
//! hash collision inside a block contributes error.

use crate::decompose::{clamp_to_domain, granularities_for_span, RangeDecomposer};
use higgs_common::hashing::splitmix64;
use higgs_common::{
    StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection, VertexId, Weight,
};
use higgs_sketch::{GraphSketch, Tcm};

/// Configuration of a [`Pgss`] summary.
#[derive(Clone, Copy, Debug)]
pub struct PgssConfig {
    /// Number of independent compressed matrices per granularity layer.
    pub matrices: usize,
    /// Side length of each compressed matrix.
    pub side: usize,
    /// Number of time slices the stream may span (determines the number of
    /// granularity layers).
    pub time_slices: u64,
}

impl Default for PgssConfig {
    fn default() -> Self {
        Self {
            matrices: 2,
            side: 256,
            time_slices: 1 << 16,
        }
    }
}

impl PgssConfig {
    /// Sizes the per-layer matrices for an expected number of stream items,
    /// mirroring how the paper configures the baselines so that all
    /// competitors have comparable hash ranges.
    pub fn for_stream(expected_edges: usize, time_slices: u64) -> Self {
        // Each layer stores every edge once; aim for a load factor around 4
        // items per bucket at the bottom layer across `matrices` matrices.
        let cells_needed = (expected_edges / 4).max(64);
        let side = (cells_needed as f64).sqrt().ceil() as usize;
        Self {
            matrices: 2,
            side: side.next_power_of_two(),
            time_slices,
        }
    }
}

/// The PGSS temporal graph summary.
#[derive(Clone, Debug)]
pub struct Pgss {
    config: PgssConfig,
    decomposer: RangeDecomposer,
    /// Largest timestamp observed so far (query ranges are clamped to it).
    max_seen: u64,
    /// One counter layer per granularity.
    layers: Vec<Tcm>,
}

impl Pgss {
    /// Creates a PGSS summary.
    pub fn new(config: PgssConfig) -> Self {
        let max_g = granularities_for_span(config.time_slices);
        let decomposer = RangeDecomposer::full(max_g);
        let layers = decomposer
            .granularities()
            .iter()
            .map(|_| Tcm::new(config.matrices, config.side))
            .collect();
        Self {
            config,
            decomposer,
            layers,
            max_seen: 0,
        }
    }

    /// Number of granularity layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Folds a dyadic block id into a vertex key so each `(vertex, block)`
    /// combination addresses an independent set of counters.
    #[inline]
    fn fold(key: VertexId, granularity: u32, block: u64) -> u64 {
        key ^ splitmix64(block.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(granularity))
    }

    fn apply(&mut self, edge: &StreamEdge, delete: bool) {
        if !delete {
            self.max_seen = self.max_seen.max(edge.timestamp);
        }
        for &g in &self.decomposer.granularities() {
            let block = edge.timestamp >> g;
            let s = Self::fold(edge.src, g, block);
            let d = Self::fold(edge.dst, g, block);
            let layer = &mut self.layers[self.decomposer.layer_index(g)];
            if delete {
                layer.delete(s, d, edge.weight);
            } else {
                layer.insert(s, d, edge.weight);
            }
        }
    }
}

impl TemporalGraphSummary for Pgss {
    fn insert(&mut self, edge: &StreamEdge) {
        self.apply(edge, false);
    }

    fn delete(&mut self, edge: &StreamEdge) {
        self.apply(edge, true);
    }

    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        let Some(range) = clamp_to_domain(range, self.max_seen) else {
            return 0;
        };
        self.decomposer
            .decompose(range)
            .into_iter()
            .map(|(g, block)| {
                let layer = &self.layers[self.decomposer.layer_index(g)];
                layer.edge_weight(Self::fold(src, g, block), Self::fold(dst, g, block))
            })
            .sum()
    }

    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        let Some(range) = clamp_to_domain(range, self.max_seen) else {
            return 0;
        };
        self.decomposer
            .decompose(range)
            .into_iter()
            .map(|(g, block)| {
                let layer = &self.layers[self.decomposer.layer_index(g)];
                let key = Self::fold(vertex, g, block);
                match direction {
                    VertexDirection::Out => layer.src_weight(key),
                    VertexDirection::In => layer.dst_weight(key),
                }
            })
            .sum()
    }

    fn space_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(GraphSketch::space_bytes)
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    fn name(&self) -> &'static str {
        "PGSS"
    }
}

impl Pgss {
    /// The configuration the summary was built with.
    pub fn config(&self) -> PgssConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Pgss {
        Pgss::new(PgssConfig {
            matrices: 2,
            side: 128,
            time_slices: 1 << 10,
        })
    }

    #[test]
    fn edge_query_over_range() {
        let mut p = small();
        p.insert(&StreamEdge::new(1, 2, 5, 10));
        p.insert(&StreamEdge::new(1, 2, 3, 20));
        p.insert(&StreamEdge::new(1, 2, 7, 900));
        assert_eq!(p.edge_query(1, 2, TimeRange::new(0, 100)), 8);
        assert_eq!(p.edge_query(1, 2, TimeRange::new(0, 1023)), 15);
    }

    #[test]
    fn vertex_query_over_range() {
        let mut p = small();
        p.insert(&StreamEdge::new(1, 2, 5, 10));
        p.insert(&StreamEdge::new(1, 3, 2, 11));
        p.insert(&StreamEdge::new(4, 2, 9, 500));
        assert!(p.vertex_query(1, VertexDirection::Out, TimeRange::new(0, 100)) >= 7);
        assert!(p.vertex_query(2, VertexDirection::In, TimeRange::new(0, 1023)) >= 14);
        // Range excluding t=500 must exclude the second edge into vertex 2.
        let early = p.vertex_query(2, VertexDirection::In, TimeRange::new(0, 100));
        assert!((5..14).contains(&early));
    }

    #[test]
    fn never_underestimates() {
        let mut p = small();
        let mut truth = std::collections::HashMap::new();
        for i in 0..2_000u64 {
            let e = StreamEdge::new(i % 50, (i * 3) % 50, 1, i % 1024);
            p.insert(&e);
            *truth.entry((e.src, e.dst)).or_insert(0u64) += 1;
        }
        for (&(s, d), &w) in truth.iter().take(200) {
            assert!(p.edge_query(s, d, TimeRange::new(0, 1023)) >= w);
        }
    }

    #[test]
    fn delete_reverses_insert() {
        let mut p = small();
        let e = StreamEdge::new(7, 8, 4, 99);
        p.insert(&e);
        p.delete(&e);
        assert_eq!(p.edge_query(7, 8, TimeRange::new(0, 1023)), 0);
    }

    #[test]
    fn layer_count_matches_span() {
        let p = small();
        assert_eq!(
            p.layer_count(),
            granularities_for_span(1 << 10) as usize + 1
        );
    }

    #[test]
    fn config_for_stream_scales_side() {
        let small_cfg = PgssConfig::for_stream(10_000, 1 << 10);
        let big_cfg = PgssConfig::for_stream(1_000_000, 1 << 10);
        assert!(big_cfg.side > small_cfg.side);
        assert!(small_cfg.side.is_power_of_two());
    }

    #[test]
    fn out_of_range_query_is_zero() {
        let mut p = small();
        p.insert(&StreamEdge::new(1, 2, 5, 10));
        assert_eq!(p.edge_query(1, 2, TimeRange::new(512, 1023)), 0);
    }

    #[test]
    fn name_and_space() {
        let p = small();
        assert_eq!(p.name(), "PGSS");
        assert!(p.space_bytes() > 0);
        assert_eq!(p.config().side, 128);
    }
}
