//! AuxoTime: the stronger baseline constructed in Section VI-A of the HIGGS
//! paper by extending Auxo (the state-of-the-art *non-temporal* graph stream
//! summary) with Horae's temporal-range decomposition scheme.
//!
//! One Auxo prefix-embedded tree is kept per dyadic granularity; the dyadic
//! block id is folded into the edge keys of that layer. AuxoTime-cpt keeps
//! only every second granularity, like Horae-cpt.

use crate::decompose::{clamp_to_domain, granularities_for_span, RangeDecomposer};
use higgs_common::hashing::splitmix64;
use higgs_common::{
    StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection, VertexId, Weight,
};
use higgs_sketch::auxo::{Auxo, AuxoConfig};
use higgs_sketch::GraphSketch;

/// Configuration of an [`AuxoTime`] summary.
#[derive(Clone, Copy, Debug)]
pub struct AuxoTimeConfig {
    /// Per-layer Auxo configuration.
    pub auxo: AuxoConfig,
    /// Number of time slices the stream may span.
    pub time_slices: u64,
    /// Keep only every `granularity_step`-th layer (1 = AuxoTime,
    /// 2 = AuxoTime-cpt).
    pub granularity_step: u32,
}

impl Default for AuxoTimeConfig {
    fn default() -> Self {
        Self {
            auxo: AuxoConfig::default(),
            time_slices: 1 << 16,
            granularity_step: 1,
        }
    }
}

impl AuxoTimeConfig {
    /// Sizes the per-layer trees for an expected number of stream items.
    pub fn for_stream(expected_edges: usize, time_slices: u64) -> Self {
        let cells_needed = (expected_edges / 2).max(64);
        let side = ((cells_needed as f64).sqrt().ceil() as usize).next_power_of_two();
        Self {
            auxo: AuxoConfig {
                side,
                ..Default::default()
            },
            time_slices,
            granularity_step: 1,
        }
    }

    /// The compact (-cpt) version of this configuration.
    pub fn compact(mut self) -> Self {
        self.granularity_step = 2;
        self
    }
}

/// The AuxoTime temporal graph summary (and, via [`AuxoTime::compact`],
/// AuxoTime-cpt).
#[derive(Clone, Debug)]
pub struct AuxoTime {
    config: AuxoTimeConfig,
    decomposer: RangeDecomposer,
    /// Largest timestamp observed so far (query ranges are clamped to it).
    max_seen: u64,
    layers: Vec<Auxo>,
    compact: bool,
}

impl AuxoTime {
    /// Creates a full AuxoTime summary.
    pub fn new(config: AuxoTimeConfig) -> Self {
        Self::build(config, false)
    }

    /// Creates the space-optimised AuxoTime-cpt variant.
    pub fn compact(config: AuxoTimeConfig) -> Self {
        Self::build(config.compact(), true)
    }

    fn build(config: AuxoTimeConfig, compact: bool) -> Self {
        let max_g = granularities_for_span(config.time_slices);
        let decomposer = if config.granularity_step <= 1 {
            RangeDecomposer::full(max_g)
        } else {
            RangeDecomposer::compact(max_g, config.granularity_step)
        };
        let layers = decomposer
            .granularities()
            .iter()
            .map(|_| Auxo::new(config.auxo))
            .collect();
        Self {
            config,
            decomposer,
            layers,
            max_seen: 0,
            compact,
        }
    }

    /// Number of granularity layers physically present.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The configuration the summary was built with.
    pub fn config(&self) -> AuxoTimeConfig {
        self.config
    }

    #[inline]
    fn fold(key: VertexId, granularity: u32, block: u64) -> u64 {
        key ^ splitmix64(block.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (u64::from(granularity) << 48))
    }

    fn apply(&mut self, edge: &StreamEdge, delete: bool) {
        if !delete {
            self.max_seen = self.max_seen.max(edge.timestamp);
        }
        for &g in &self.decomposer.granularities() {
            let block = edge.timestamp >> g;
            let s = Self::fold(edge.src, g, block);
            let d = Self::fold(edge.dst, g, block);
            let idx = self.decomposer.layer_index(g);
            if delete {
                self.layers[idx].delete(s, d, edge.weight);
            } else {
                self.layers[idx].insert(s, d, edge.weight);
            }
        }
    }
}

impl TemporalGraphSummary for AuxoTime {
    fn insert(&mut self, edge: &StreamEdge) {
        self.apply(edge, false);
    }

    fn delete(&mut self, edge: &StreamEdge) {
        self.apply(edge, true);
    }

    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        let Some(range) = clamp_to_domain(range, self.max_seen) else {
            return 0;
        };
        self.decomposer
            .decompose(range)
            .into_iter()
            .map(|(g, block)| {
                let layer = &self.layers[self.decomposer.layer_index(g)];
                layer.edge_weight(Self::fold(src, g, block), Self::fold(dst, g, block))
            })
            .sum()
    }

    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        let Some(range) = clamp_to_domain(range, self.max_seen) else {
            return 0;
        };
        self.decomposer
            .decompose(range)
            .into_iter()
            .map(|(g, block)| {
                let layer = &self.layers[self.decomposer.layer_index(g)];
                let key = Self::fold(vertex, g, block);
                match direction {
                    VertexDirection::Out => layer.src_weight(key),
                    VertexDirection::In => layer.dst_weight(key),
                }
            })
            .sum()
    }

    fn space_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(GraphSketch::space_bytes)
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    fn name(&self) -> &'static str {
        if self.compact {
            "AuxoTime-cpt"
        } else {
            "AuxoTime"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AuxoTimeConfig {
        AuxoTimeConfig {
            auxo: AuxoConfig {
                side: 32,
                fingerprint_bits: 16,
                prefix_bits: 2,
                max_levels: 6,
            },
            time_slices: 1 << 10,
            granularity_step: 1,
        }
    }

    #[test]
    fn edge_query_over_range() {
        let mut a = AuxoTime::new(cfg());
        a.insert(&StreamEdge::new(1, 2, 5, 10));
        a.insert(&StreamEdge::new(1, 2, 3, 20));
        a.insert(&StreamEdge::new(1, 2, 7, 900));
        assert_eq!(a.edge_query(1, 2, TimeRange::new(0, 100)), 8);
        assert_eq!(a.edge_query(1, 2, TimeRange::new(0, 1023)), 15);
    }

    #[test]
    fn vertex_query_over_range() {
        let mut a = AuxoTime::new(cfg());
        a.insert(&StreamEdge::new(1, 2, 5, 10));
        a.insert(&StreamEdge::new(1, 3, 2, 11));
        a.insert(&StreamEdge::new(4, 2, 9, 500));
        assert!(a.vertex_query(1, VertexDirection::Out, TimeRange::new(0, 100)) >= 7);
        assert!(a.vertex_query(2, VertexDirection::In, TimeRange::new(0, 1023)) >= 14);
    }

    #[test]
    fn compact_variant_has_fewer_layers_and_less_space() {
        let full = AuxoTime::new(cfg());
        let cpt = AuxoTime::compact(cfg());
        assert!(cpt.layer_count() < full.layer_count());
        assert!(cpt.space_bytes() <= full.space_bytes());
        assert_eq!(full.name(), "AuxoTime");
        assert_eq!(cpt.name(), "AuxoTime-cpt");
    }

    #[test]
    fn never_underestimates() {
        let mut a = AuxoTime::new(cfg());
        let mut truth = std::collections::HashMap::new();
        for i in 0..1_500u64 {
            let e = StreamEdge::new(i % 40, (i * 11) % 40, 1, i % 1024);
            a.insert(&e);
            *truth.entry((e.src, e.dst)).or_insert(0u64) += 1;
        }
        for (&(s, d), &w) in truth.iter().take(100) {
            assert!(a.edge_query(s, d, TimeRange::new(0, 1023)) >= w);
        }
    }

    #[test]
    fn delete_reverses_insert() {
        let mut a = AuxoTime::new(cfg());
        let e = StreamEdge::new(5, 6, 3, 321);
        a.insert(&e);
        a.delete(&e);
        assert_eq!(a.edge_query(5, 6, TimeRange::new(0, 1023)), 0);
    }

    #[test]
    fn out_of_range_query_is_zero() {
        let mut a = AuxoTime::new(cfg());
        a.insert(&StreamEdge::new(1, 2, 5, 10));
        assert_eq!(a.edge_query(1, 2, TimeRange::new(512, 1023)), 0);
    }

    #[test]
    fn config_for_stream_scales() {
        let small = AuxoTimeConfig::for_stream(10_000, 1 << 12);
        let big = AuxoTimeConfig::for_stream(500_000, 1 << 12);
        assert!(big.auxo.side > small.auxo.side);
        assert_eq!(small.config_step(), 1);
    }

    impl AuxoTimeConfig {
        fn config_step(&self) -> u32 {
            self.granularity_step
        }
    }
}
