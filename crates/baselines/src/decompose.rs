//! Top-down temporal-domain range decomposition shared by the baselines.
//!
//! PGSS, Horae, and AuxoTime all recursively split the temporal domain into
//! dyadic granularities: layer `g` covers blocks of `2^g` consecutive time
//! slices. A query range `[ts, te]` is decomposed into the minimal set of
//! aligned dyadic blocks drawn from the *available* granularities — the full
//! variants keep every granularity `0..=max`, while the "-cpt" (compact)
//! variants keep only every `step`-th granularity, trading extra sub-range
//! queries (and therefore accuracy and latency) for less space, exactly the
//! trade-off discussed in Section VI-B.

use higgs_common::TimeRange;

/// Decomposes temporal ranges into aligned dyadic blocks restricted to a set
/// of available granularities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeDecomposer {
    /// Largest granularity (block size `2^max_granularity`) available.
    pub max_granularity: u32,
    /// Only granularities that are multiples of `step` are available
    /// (`step = 1` keeps every layer; `step = 2` is the "-cpt" layout).
    pub step: u32,
}

impl RangeDecomposer {
    /// Creates a decomposer with all granularities `0..=max_granularity`.
    pub fn full(max_granularity: u32) -> Self {
        Self {
            max_granularity,
            step: 1,
        }
    }

    /// Creates a compact decomposer that only keeps every `step`-th
    /// granularity (granularity 0 is always kept so single slices remain
    /// addressable).
    pub fn compact(max_granularity: u32, step: u32) -> Self {
        assert!(step >= 1);
        Self {
            max_granularity,
            step,
        }
    }

    /// Whether granularity `g` has a physical layer.
    pub fn is_available(&self, g: u32) -> bool {
        g <= self.max_granularity && g.is_multiple_of(self.step)
    }

    /// The granularities that have physical layers, ascending.
    pub fn granularities(&self) -> Vec<u32> {
        (0..=self.max_granularity)
            .filter(|&g| self.is_available(g))
            .collect()
    }

    /// Index of granularity `g` among the available layers.
    pub fn layer_index(&self, g: u32) -> usize {
        debug_assert!(self.is_available(g));
        (g / self.step) as usize
    }

    /// Decomposes `[range.start, range.end]` into `(granularity, block)`
    /// pairs, where block `k` at granularity `g` covers slices
    /// `[k·2^g, (k+1)·2^g − 1]`. The blocks are disjoint, aligned, restricted
    /// to available granularities, and exactly cover the range.
    pub fn decompose(&self, range: TimeRange) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        let mut lo = range.start;
        let hi = range.end;
        let granularities = self.granularities();
        while lo <= hi {
            let mut best = 0u32;
            for &g in &granularities {
                let block = 1u64 << g;
                if lo.is_multiple_of(block) && block - 1 <= hi - lo {
                    best = g;
                }
            }
            out.push((best, lo >> best));
            let next = lo.checked_add(1u64 << best);
            match next {
                Some(n) => lo = n,
                None => break,
            }
        }
        out
    }

    /// Upper bound on the number of blocks any range of length `range_len`
    /// decomposes into (`2·(#layers)` for the full layout; larger for compact
    /// layouts).
    pub fn worst_case_blocks(&self, range_len: u64) -> usize {
        let levels = 64 - range_len.leading_zeros();
        (2 * levels as usize * self.step as usize).max(1)
    }
}

/// Number of dyadic granularities needed to cover a stream spanning
/// `time_slices` slices (i.e. `⌈log2(time_slices)⌉`, at least 1).
pub fn granularities_for_span(time_slices: u64) -> u32 {
    let slices = time_slices.max(2);
    64 - (slices - 1).leading_zeros()
}

/// Clamps a query range to the time domain `[0, max_seen]` actually covered
/// by a summary. Returns `None` when the range lies entirely after the last
/// observed timestamp (the query result is zero by definition). Without this
/// clamp an unbounded range such as `TimeRange::all()` would decompose into
/// an astronomically large number of dyadic blocks.
pub fn clamp_to_domain(range: TimeRange, max_seen: u64) -> Option<TimeRange> {
    range.intersect(&TimeRange::new(0, max_seen))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(dec: &RangeDecomposer, range: TimeRange) {
        let blocks = dec.decompose(range);
        let mut covered: Vec<(u64, u64)> = blocks
            .iter()
            .map(|&(g, k)| (k << g, (k << g) + (1u64 << g) - 1))
            .collect();
        covered.sort_unstable();
        assert_eq!(covered.first().unwrap().0, range.start);
        assert_eq!(covered.last().unwrap().1, range.end);
        for w in covered.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0, "gap/overlap in {blocks:?}");
        }
        for &(g, _) in &blocks {
            assert!(dec.is_available(g), "used unavailable granularity {g}");
        }
    }

    #[test]
    fn full_decomposition_covers_exactly() {
        let dec = RangeDecomposer::full(20);
        for (s, e) in [
            (0u64, 0u64),
            (0, 1023),
            (5, 17),
            (100, 1000),
            (7, 8),
            (1, 1),
        ] {
            check_cover(&dec, TimeRange::new(s, e));
        }
    }

    #[test]
    fn compact_decomposition_covers_exactly_with_fewer_layers() {
        let dec = RangeDecomposer::compact(20, 2);
        for (s, e) in [(0u64, 1023u64), (5, 500), (64, 319)] {
            check_cover(&dec, TimeRange::new(s, e));
        }
    }

    #[test]
    fn compact_needs_at_least_as_many_blocks() {
        let full = RangeDecomposer::full(20);
        let cpt = RangeDecomposer::compact(20, 2);
        for (s, e) in [(0u64, 1023u64), (3, 801), (17, 905)] {
            let r = TimeRange::new(s, e);
            assert!(cpt.decompose(r).len() >= full.decompose(r).len());
        }
    }

    #[test]
    fn aligned_power_of_two_is_one_block() {
        let dec = RangeDecomposer::full(20);
        assert_eq!(dec.decompose(TimeRange::new(64, 127)), vec![(6, 1)]);
    }

    #[test]
    fn max_granularity_caps_block_size() {
        let dec = RangeDecomposer::full(3); // blocks of at most 8 slices
        let blocks = dec.decompose(TimeRange::new(0, 63));
        assert_eq!(blocks.len(), 8);
        assert!(blocks.iter().all(|&(g, _)| g <= 3));
    }

    #[test]
    fn layer_indexing() {
        let dec = RangeDecomposer::compact(8, 2);
        assert_eq!(dec.granularities(), vec![0, 2, 4, 6, 8]);
        assert_eq!(dec.layer_index(4), 2);
        assert!(dec.is_available(6));
        assert!(!dec.is_available(5));
    }

    #[test]
    fn granularities_for_span_values() {
        assert_eq!(granularities_for_span(2), 1);
        assert_eq!(granularities_for_span(1024), 10);
        assert_eq!(granularities_for_span(1025), 11);
        assert!(granularities_for_span(1) >= 1);
    }

    #[test]
    fn worst_case_blocks_positive() {
        let dec = RangeDecomposer::full(16);
        assert!(dec.worst_case_blocks(1_000) >= 1);
    }
}
