//! TCM (Tang et al., SIGMOD'16): "Graph stream summarization: from big bang
//! to big crunch".
//!
//! TCM keeps `m` compressed matrices, each paired with an independent hash
//! function. An edge `(s, d, w)` adds `w` to cell `(h_i(s), h_i(d))` of every
//! matrix `i`; an edge query returns the minimum of the corresponding cells,
//! and a vertex query returns the minimum over matrices of the row (or
//! column) sum. Like Count-Min, TCM never underestimates but suffers heavy
//! hash collisions — the weakness the rest of the roadmap addresses.

use crate::GraphSketch;
use higgs_common::hashing::vertex_hash;

/// One d×d counter matrix with its own hash seed.
#[derive(Clone, Debug)]
struct Matrix {
    side: usize,
    seed: u64,
    cells: Vec<i64>,
}

impl Matrix {
    fn new(side: usize, seed: u64) -> Self {
        Self {
            side,
            seed,
            cells: vec![0; side * side],
        }
    }

    #[inline]
    fn row_of(&self, key: u64) -> usize {
        (vertex_hash(key, self.seed) % self.side as u64) as usize
    }

    #[inline]
    fn col_of(&self, key: u64) -> usize {
        (vertex_hash(key, self.seed ^ 0x9E37_79B9) % self.side as u64) as usize
    }

    fn add(&mut self, src: u64, dst: u64, delta: i64) {
        let idx = self.row_of(src) * self.side + self.col_of(dst);
        self.cells[idx] += delta;
    }

    fn edge(&self, src: u64, dst: u64) -> i64 {
        self.cells[self.row_of(src) * self.side + self.col_of(dst)]
    }

    fn row_sum(&self, src: u64) -> i64 {
        let r = self.row_of(src);
        self.cells[r * self.side..(r + 1) * self.side].iter().sum()
    }

    fn col_sum(&self, dst: u64) -> i64 {
        let c = self.col_of(dst);
        (0..self.side).map(|r| self.cells[r * self.side + c]).sum()
    }

    fn bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<i64>()
    }
}

/// The TCM graph sketch: `m` independent compressed matrices.
#[derive(Clone, Debug)]
pub struct Tcm {
    matrices: Vec<Matrix>,
}

impl Tcm {
    /// Creates a TCM with `matrices ≥ 1` compressed matrices of side
    /// `side ≥ 1`.
    pub fn new(matrices: usize, side: usize) -> Self {
        assert!(matrices >= 1 && side >= 1, "matrices and side must be ≥ 1");
        Self {
            matrices: (0..matrices)
                .map(|i| Matrix::new(side, 0x7C31_15AD ^ (i as u64 + 1)))
                .collect(),
        }
    }

    /// Number of compressed matrices.
    pub fn matrix_count(&self) -> usize {
        self.matrices.len()
    }

    /// Side length of each matrix.
    pub fn side(&self) -> usize {
        self.matrices[0].side
    }
}

impl GraphSketch for Tcm {
    fn insert(&mut self, src_key: u64, dst_key: u64, weight: u64) {
        for m in &mut self.matrices {
            m.add(src_key, dst_key, weight as i64);
        }
    }

    fn delete(&mut self, src_key: u64, dst_key: u64, weight: u64) {
        for m in &mut self.matrices {
            m.add(src_key, dst_key, -(weight as i64));
        }
    }

    fn edge_weight(&self, src_key: u64, dst_key: u64) -> u64 {
        self.matrices
            .iter()
            .map(|m| m.edge(src_key, dst_key))
            .min()
            .unwrap_or(0)
            .max(0) as u64
    }

    fn src_weight(&self, src_key: u64) -> u64 {
        self.matrices
            .iter()
            .map(|m| m.row_sum(src_key))
            .min()
            .unwrap_or(0)
            .max(0) as u64
    }

    fn dst_weight(&self, dst_key: u64) -> u64 {
        self.matrices
            .iter()
            .map(|m| m.col_sum(dst_key))
            .min()
            .unwrap_or(0)
            .max(0) as u64
    }

    fn space_bytes(&self) -> usize {
        self.matrices.iter().map(Matrix::bytes).sum::<usize>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_query_returns_inserted_weight() {
        let mut t = Tcm::new(3, 64);
        t.insert(1, 2, 5);
        t.insert(1, 2, 2);
        assert_eq!(t.edge_weight(1, 2), 7);
    }

    #[test]
    fn vertex_queries_aggregate_incident_edges() {
        let mut t = Tcm::new(3, 128);
        t.insert(1, 2, 5);
        t.insert(1, 3, 2);
        t.insert(4, 2, 1);
        assert!(t.src_weight(1) >= 7);
        assert!(t.dst_weight(2) >= 6);
    }

    #[test]
    fn never_underestimates() {
        let mut t = Tcm::new(2, 32);
        let mut truth = std::collections::HashMap::new();
        for i in 0..3_000u64 {
            let (s, d, w) = (i % 97, i % 53, 1 + i % 3);
            t.insert(s, d, w);
            *truth.entry((s, d)).or_insert(0u64) += w;
        }
        for ((s, d), w) in truth {
            assert!(t.edge_weight(s, d) >= w);
        }
    }

    #[test]
    fn delete_reverses_insert() {
        let mut t = Tcm::new(3, 64);
        t.insert(5, 6, 4);
        t.delete(5, 6, 4);
        assert_eq!(t.edge_weight(5, 6), 0);
    }

    #[test]
    fn more_matrices_do_not_increase_error() {
        let mut small = Tcm::new(1, 32);
        let mut big = Tcm::new(4, 32);
        for i in 0..5_000u64 {
            small.insert(i, i + 1, 1);
            big.insert(i, i + 1, 1);
        }
        let err_small: u64 = (0..200).map(|i| small.edge_weight(i, i + 1) - 1).sum();
        let err_big: u64 = (0..200).map(|i| big.edge_weight(i, i + 1) - 1).sum();
        assert!(err_big <= err_small);
    }

    #[test]
    fn space_scales_with_configuration() {
        assert!(Tcm::new(4, 128).space_bytes() > Tcm::new(2, 64).space_bytes());
        assert_eq!(Tcm::new(2, 64).matrix_count(), 2);
        assert_eq!(Tcm::new(2, 64).side(), 64);
    }

    #[test]
    fn unseen_edge_query_is_bounded_by_collisions_only() {
        let t = Tcm::new(3, 64);
        assert_eq!(t.edge_weight(100, 200), 0);
        assert_eq!(t.src_weight(100), 0);
        assert_eq!(t.dst_weight(200), 0);
    }
}
