//! The Count-Min sketch (Cormode & Muthukrishnan, J. Algorithms'04): the
//! frequency-estimation substrate at the root of the technical evolution in
//! Fig. 4 of the HIGGS paper.

use higgs_common::hashing::vertex_hash;

/// A Count-Min sketch with `depth` rows of `width` counters.
///
/// Counters are signed so deletions (count-min supports them symmetrically)
/// cannot wrap; queries clamp at zero, preserving one-sided error for
/// insert-only workloads.
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    depth: usize,
    width: usize,
    counters: Vec<i64>,
}

impl CountMinSketch {
    /// Creates a sketch with `depth ≥ 1` hash rows and `width ≥ 1` counters
    /// per row.
    pub fn new(depth: usize, width: usize) -> Self {
        assert!(depth >= 1 && width >= 1, "depth and width must be ≥ 1");
        Self {
            depth,
            width,
            counters: vec![0; depth * width],
        }
    }

    /// Creates a sketch sized for additive error `ε` (relative to the total
    /// weight) with failure probability `δ`: `width = ⌈e/ε⌉`,
    /// `depth = ⌈ln(1/δ)⌉`.
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(depth, width)
    }

    /// Number of hash rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    fn index(&self, row: usize, key: u64) -> usize {
        let h = vertex_hash(key, row as u64 + 1);
        row * self.width + (h % self.width as u64) as usize
    }

    /// Adds `weight` to `key`.
    pub fn insert(&mut self, key: u64, weight: u64) {
        for row in 0..self.depth {
            let idx = self.index(row, key);
            self.counters[idx] += weight as i64;
        }
    }

    /// Subtracts `weight` from `key`.
    pub fn delete(&mut self, key: u64, weight: u64) {
        for row in 0..self.depth {
            let idx = self.index(row, key);
            self.counters[idx] -= weight as i64;
        }
    }

    /// Point query: the minimum counter across rows, clamped at zero.
    pub fn query(&self, key: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.counters[self.index(row, key)])
            .min()
            .unwrap_or(0)
            .max(0) as u64
    }

    /// Memory footprint in bytes.
    pub fn space_bytes(&self) -> usize {
        self.counters.capacity() * std::mem::size_of::<i64>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_query() {
        let mut cm = CountMinSketch::new(4, 1024);
        cm.insert(42, 5);
        cm.insert(42, 3);
        assert_eq!(cm.query(42), 8);
    }

    #[test]
    fn estimates_never_underestimate() {
        let mut cm = CountMinSketch::new(4, 256);
        let mut truth = std::collections::HashMap::new();
        for k in 0..5_000u64 {
            let w = (k % 7) + 1;
            cm.insert(k, w);
            *truth.entry(k).or_insert(0u64) += w;
        }
        for (k, t) in truth {
            assert!(cm.query(k) >= t, "underestimate for key {k}");
        }
    }

    #[test]
    fn unseen_keys_may_collide_but_start_at_zero() {
        let cm = CountMinSketch::new(3, 128);
        assert_eq!(cm.query(999), 0);
    }

    #[test]
    fn delete_reverses_insert() {
        let mut cm = CountMinSketch::new(4, 512);
        cm.insert(7, 10);
        cm.delete(7, 10);
        assert_eq!(cm.query(7), 0);
    }

    #[test]
    fn with_error_sizes_reasonably() {
        let cm = CountMinSketch::with_error(0.01, 0.01);
        assert!(cm.width() >= 271);
        assert!(cm.depth() >= 4);
    }

    #[test]
    fn wider_sketch_is_more_accurate() {
        let mut narrow = CountMinSketch::new(2, 32);
        let mut wide = CountMinSketch::new(2, 4096);
        for k in 0..20_000u64 {
            narrow.insert(k, 1);
            wide.insert(k, 1);
        }
        let narrow_err: u64 = (0..100).map(|k| narrow.query(k) - 1).sum();
        let wide_err: u64 = (0..100).map(|k| wide.query(k) - 1).sum();
        assert!(wide_err < narrow_err);
    }

    #[test]
    fn space_grows_with_dimensions() {
        assert!(
            CountMinSketch::new(4, 1024).space_bytes() > CountMinSketch::new(2, 64).space_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn zero_width_panics() {
        let _ = CountMinSketch::new(1, 0);
    }
}
