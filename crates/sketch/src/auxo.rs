//! Auxo (Jiang et al., VLDB'23): "A scalable and efficient graph stream
//! summarization structure".
//!
//! Auxo organises GSS-style fingerprinted matrices into a *prefix embedded
//! tree* (PET). Every edge derives a fingerprint pair from its endpoints; the
//! leading bits of the combined fingerprint pick a path down the tree, and
//! the remaining bits are stored. Insertion starts at the root matrix and
//! descends one level each time the current matrix has no room for the edge,
//! appending levels on demand (the "proportional incremental" growth
//! strategy: each deeper level has `2^bits_per_level` times as many matrices,
//! so total capacity grows geometrically while the per-level prefix consumed
//! shortens the stored fingerprints).
//!
//! Auxo is the strongest non-temporal baseline in the paper; the AuxoTime
//! baseline (in `higgs-baselines`) adds Horae's temporal-range decomposition
//! on top of this structure.

use crate::GraphSketch;
use higgs_common::hashing::vertex_hash;
use std::collections::HashMap;

/// Configuration of an [`Auxo`] prefix-embedded tree.
#[derive(Clone, Copy, Debug)]
pub struct AuxoConfig {
    /// Side length of each level's matrices (power of two).
    pub side: usize,
    /// Fingerprint bits per endpoint at the root level.
    pub fingerprint_bits: u32,
    /// Prefix bits consumed per level of the tree (per endpoint).
    pub prefix_bits: u32,
    /// Maximum number of levels the tree may grow to.
    pub max_levels: u32,
}

impl Default for AuxoConfig {
    fn default() -> Self {
        Self {
            side: 128,
            fingerprint_bits: 16,
            prefix_bits: 2,
            max_levels: 8,
        }
    }
}

/// A cell in one of the PET matrices.
#[derive(Clone, Copy, Debug, Default)]
struct Cell {
    occupied: bool,
    fp_src: u32,
    fp_dst: u32,
    weight: i64,
}

/// One level of the prefix-embedded tree: `2^(prefix_bits · 2 · level)`
/// matrices, indexed by the prefix consumed so far.
#[derive(Clone, Debug)]
struct Level {
    /// Matrices of this level, keyed by prefix index. Allocated lazily so an
    /// almost-empty level costs almost nothing.
    matrices: HashMap<u64, Vec<Cell>>,
    side: usize,
}

impl Level {
    fn new(side: usize) -> Self {
        Self {
            matrices: HashMap::new(),
            side,
        }
    }

    fn matrix_mut(&mut self, prefix: u64) -> &mut Vec<Cell> {
        let side = self.side;
        self.matrices
            .entry(prefix)
            .or_insert_with(|| vec![Cell::default(); side * side])
    }

    fn matrix(&self, prefix: u64) -> Option<&Vec<Cell>> {
        self.matrices.get(&prefix)
    }

    fn bytes(&self) -> usize {
        self.matrices.len() * self.side * self.side * std::mem::size_of::<Cell>()
            + self.matrices.capacity() * std::mem::size_of::<(u64, Vec<Cell>)>()
    }
}

/// Hash decomposition of one endpoint for Auxo.
#[derive(Clone, Copy, Debug)]
struct Decomposed {
    address: u64,
    fingerprint: u64,
}

/// The Auxo prefix-embedded tree sketch.
#[derive(Clone, Debug)]
pub struct Auxo {
    config: AuxoConfig,
    levels: Vec<Level>,
}

impl Auxo {
    /// Creates an empty Auxo tree.
    pub fn new(config: AuxoConfig) -> Self {
        assert!(config.side.is_power_of_two(), "side must be a power of two");
        assert!(config.prefix_bits >= 1 && config.prefix_bits <= 8);
        assert!(config.fingerprint_bits > config.prefix_bits);
        Self {
            config,
            levels: vec![Level::new(config.side)],
        }
    }

    /// Creates an Auxo tree with the default configuration and the given
    /// matrix side.
    pub fn with_side(side: usize) -> Self {
        Self::new(AuxoConfig {
            side,
            ..Default::default()
        })
    }

    /// Number of levels currently allocated.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    #[inline]
    fn decompose(&self, key: u64) -> Decomposed {
        let h = vertex_hash(key, 0xA0B0_u64 ^ 0xDEAD_BEEF);
        let fp_mask = (1u64 << self.config.fingerprint_bits) - 1;
        Decomposed {
            address: (h >> self.config.fingerprint_bits) % self.config.side as u64,
            fingerprint: h & fp_mask,
        }
    }

    /// Prefix index and residual fingerprints for a given level.
    fn level_view(&self, src: Decomposed, dst: Decomposed, level: u32) -> (u64, u32, u32) {
        let consumed = self.config.prefix_bits * level;
        let fp_bits = self.config.fingerprint_bits;
        let keep = fp_bits.saturating_sub(consumed);
        let take = |fp: u64| -> (u64, u64) {
            // Prefix = the `consumed` leading bits, residual = the rest.
            if consumed >= fp_bits {
                (fp, 0)
            } else {
                (fp >> keep, fp & ((1u64 << keep) - 1))
            }
        };
        let (sp, sres) = take(src.fingerprint);
        let (dp, dres) = take(dst.fingerprint);
        let prefix = (sp << (consumed.min(32))) | dp;
        (prefix, sres as u32, dres as u32)
    }

    fn add(&mut self, src_key: u64, dst_key: u64, delta: i64) {
        let src = self.decompose(src_key);
        let dst = self.decompose(dst_key);
        let side = self.config.side;
        let max_levels = self.config.max_levels;
        for level in 0..max_levels {
            if level as usize >= self.levels.len() {
                self.levels.push(Level::new(side));
            }
            let (prefix, fs, fd) = self.level_view(src, dst, level);
            let idx = (src.address as usize) * side + dst.address as usize;
            let matrix = self.levels[level as usize].matrix_mut(prefix);
            let cell = &mut matrix[idx];
            if cell.occupied && cell.fp_src == fs && cell.fp_dst == fd {
                cell.weight += delta;
                return;
            }
            if !cell.occupied && delta > 0 {
                *cell = Cell {
                    occupied: true,
                    fp_src: fs,
                    fp_dst: fd,
                    weight: delta,
                };
                return;
            }
            // Otherwise descend to the next level.
        }
        // Tree exhausted: accumulate in the deepest level regardless of the
        // resident fingerprint (bounded error fallback, mirroring Auxo's
        // leaf-chaining behaviour under extreme load).
        let deepest = self.levels.len() - 1;
        let (prefix, _, _) = self.level_view(src, dst, deepest as u32);
        let idx = (src.address as usize) * side + dst.address as usize;
        let cell = &mut self.levels[deepest].matrix_mut(prefix)[idx];
        cell.occupied = true;
        cell.weight = (cell.weight + delta).max(0);
    }
}

impl GraphSketch for Auxo {
    fn insert(&mut self, src_key: u64, dst_key: u64, weight: u64) {
        self.add(src_key, dst_key, weight as i64);
    }

    fn delete(&mut self, src_key: u64, dst_key: u64, weight: u64) {
        self.add(src_key, dst_key, -(weight as i64));
    }

    fn edge_weight(&self, src_key: u64, dst_key: u64) -> u64 {
        let src = self.decompose(src_key);
        let dst = self.decompose(dst_key);
        let side = self.config.side;
        let idx = (src.address as usize) * side + dst.address as usize;
        let mut total = 0i64;
        for level in 0..self.levels.len() {
            let (prefix, fs, fd) = self.level_view(src, dst, level as u32);
            if let Some(matrix) = self.levels[level].matrix(prefix) {
                let cell = &matrix[idx];
                if cell.occupied && cell.fp_src == fs && cell.fp_dst == fd {
                    total += cell.weight;
                }
            }
        }
        total.max(0) as u64
    }

    fn src_weight(&self, src_key: u64) -> u64 {
        let src = self.decompose(src_key);
        let side = self.config.side;
        let mut total = 0i64;
        for (li, level) in self.levels.iter().enumerate() {
            let consumed = self.config.prefix_bits * li as u32;
            let keep = self.config.fingerprint_bits.saturating_sub(consumed);
            let (src_prefix, src_res) = if consumed >= self.config.fingerprint_bits {
                (src.fingerprint, 0)
            } else {
                (
                    src.fingerprint >> keep,
                    src.fingerprint & ((1u64 << keep) - 1),
                )
            };
            for (&prefix, matrix) in &level.matrices {
                // The source prefix occupies the high bits of the combined
                // prefix; only matrices whose prefix matches can hold edges
                // of this source.
                if consumed > 0 && (prefix >> consumed.min(32)) != src_prefix {
                    continue;
                }
                let row = src.address as usize;
                for cell in &matrix[row * side..(row + 1) * side] {
                    if cell.occupied && u64::from(cell.fp_src) == src_res {
                        total += cell.weight;
                    }
                }
            }
        }
        total.max(0) as u64
    }

    fn dst_weight(&self, dst_key: u64) -> u64 {
        let dst = self.decompose(dst_key);
        let side = self.config.side;
        let mut total = 0i64;
        for (li, level) in self.levels.iter().enumerate() {
            let consumed = self.config.prefix_bits * li as u32;
            let keep = self.config.fingerprint_bits.saturating_sub(consumed);
            let (dst_prefix, dst_res) = if consumed >= self.config.fingerprint_bits {
                (dst.fingerprint, 0)
            } else {
                (
                    dst.fingerprint >> keep,
                    dst.fingerprint & ((1u64 << keep) - 1),
                )
            };
            let prefix_mask = if consumed >= 32 {
                u64::MAX
            } else {
                (1u64 << consumed) - 1
            };
            for (&prefix, matrix) in &level.matrices {
                if consumed > 0 && (prefix & prefix_mask) != dst_prefix {
                    continue;
                }
                let col = dst.address as usize;
                for row in 0..side {
                    let cell = &matrix[row * side + col];
                    if cell.occupied && u64::from(cell.fp_dst) == dst_res {
                        total += cell.weight;
                    }
                }
            }
        }
        total.max(0) as u64
    }

    fn space_bytes(&self) -> usize {
        self.levels.iter().map(Level::bytes).sum::<usize>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_edge_query() {
        let mut a = Auxo::with_side(64);
        a.insert(1, 2, 3);
        a.insert(1, 2, 4);
        assert_eq!(a.edge_weight(1, 2), 7);
    }

    #[test]
    fn grows_levels_under_pressure() {
        let mut a = Auxo::new(AuxoConfig {
            side: 4,
            fingerprint_bits: 16,
            prefix_bits: 2,
            max_levels: 8,
        });
        for i in 0..2_000u64 {
            a.insert(i, i * 31 + 7, 1);
        }
        assert!(a.levels() > 1, "PET should have grown under load");
    }

    #[test]
    fn never_underestimates() {
        let mut a = Auxo::new(AuxoConfig {
            side: 16,
            fingerprint_bits: 16,
            prefix_bits: 2,
            max_levels: 6,
        });
        let mut truth = std::collections::HashMap::new();
        for i in 0..3_000u64 {
            let (s, d) = (i % 120, (i * 13) % 120);
            a.insert(s, d, 1);
            *truth.entry((s, d)).or_insert(0u64) += 1;
        }
        for (&(s, d), &w) in &truth {
            assert!(a.edge_weight(s, d) >= w, "underestimate for ({s},{d})");
        }
    }

    #[test]
    fn vertex_queries_cover_incident_edges() {
        let mut a = Auxo::with_side(64);
        a.insert(5, 10, 2);
        a.insert(5, 11, 3);
        a.insert(6, 10, 4);
        assert!(a.src_weight(5) >= 5);
        assert!(a.dst_weight(10) >= 6);
    }

    #[test]
    fn delete_reverses_insert() {
        let mut a = Auxo::with_side(64);
        a.insert(8, 9, 6);
        a.delete(8, 9, 6);
        assert_eq!(a.edge_weight(8, 9), 0);
    }

    #[test]
    fn space_grows_with_levels() {
        let small = Auxo::with_side(16);
        let mut loaded = Auxo::with_side(16);
        for i in 0..5_000u64 {
            loaded.insert(i, i + 1, 1);
        }
        assert!(loaded.space_bytes() > small.space_bytes());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_side() {
        let _ = Auxo::with_side(100);
    }
}
