//! GSS (Gou et al., ICDE'19): "Fast and accurate graph stream summarization".
//!
//! GSS improves on TCM by storing a *fingerprint* of the edge in each matrix
//! cell so that colliding edges can be told apart. Each vertex hash is split
//! into an address part (row/column) and a fingerprint part; square hashing
//! gives every edge `r × r` candidate cells. An edge is stored in the first
//! candidate cell that is empty or already holds its fingerprint pair; if all
//! candidates are occupied by other edges, the edge spills into an
//! adjacency-list buffer keyed by the exact fingerprint pair. Queries check
//! the candidate cells and the buffer, so GSS only errs when two distinct
//! edges share both the address *and* the fingerprint pair.
//!
//! # Storage layout
//!
//! Like the HIGGS compressed matrix, the cell grid is stored
//! structure-of-arrays: parallel columns of packed fingerprint keys
//! (`fp_src` high half, `fp_dst` low half), packed index tags (index pair in
//! bits 32..48, mirroring the HIGGS tag layout with a zero offset half), and
//! signed weights, plus an occupancy bitmap consulted only by insertion.
//! Cells are never vacated once occupied and unoccupied cells stay all-zero,
//! so the vertex-query row and column sweeps run over *fixed-length* cell
//! ranges with [`higgs_common::sum_matching`] — empty cells can at worst
//! match an all-zero pattern and then contribute zero weight, which keeps
//! the key-first sweep (scalar or vector kernel alike) bit-identical to an
//! occupancy-checked scan.

use crate::GraphSketch;
use higgs_common::hashing::{vertex_hash, AddressSequence};
use higgs_common::simd::{prefetch_read_data, sum_matching};
use std::collections::HashMap;

/// Key bits holding the source fingerprint.
const KEY_SRC_MASK: u64 = 0xFFFF_FFFF_0000_0000;
/// Key bits holding the destination fingerprint.
const KEY_DST_MASK: u64 = 0x0000_0000_FFFF_FFFF;
/// Tag bits holding the source half of the index pair.
const TAG_SRC_MASK: u64 = 0xFF00_0000_0000;
/// Tag bits holding the destination half of the index pair.
const TAG_DST_MASK: u64 = 0x00FF_0000_0000;

#[inline]
fn pack_key(fp_src: u32, fp_dst: u32) -> u64 {
    (u64::from(fp_src) << 32) | u64::from(fp_dst)
}

#[inline]
fn pack_tag(idx_src: u8, idx_dst: u8) -> u64 {
    (u64::from(idx_src) << 40) | (u64::from(idx_dst) << 32)
}

/// Configuration of a [`Gss`] sketch.
#[derive(Clone, Copy, Debug)]
pub struct GssConfig {
    /// Side length of the square matrix (power of two).
    pub side: usize,
    /// Fingerprint length in bits (≤ 32 per endpoint).
    pub fingerprint_bits: u32,
    /// Number of candidate addresses per endpoint (square hashing width).
    pub candidates: u32,
}

impl Default for GssConfig {
    fn default() -> Self {
        Self {
            side: 256,
            fingerprint_bits: 16,
            candidates: 4,
        }
    }
}

/// The GSS graph sketch: fingerprinted matrix + adjacency-list buffer.
#[derive(Clone, Debug)]
pub struct Gss {
    config: GssConfig,
    /// Packed fingerprint pairs, one per cell, row-major. Parallel to
    /// `tags`, `weights`, and `occupied`.
    keys: Vec<u64>,
    /// Packed square-hashing index pairs (bits 32..48; low half always 0).
    tags: Vec<u64>,
    /// Signed cell weights; zero for every unoccupied cell.
    weights: Vec<i64>,
    /// Occupancy bitmap: consulted only by insertion (queries rely on the
    /// all-zero-when-empty invariant instead).
    occupied: Vec<bool>,
    seq: AddressSequence,
    /// Spill buffer: exact fingerprint-pair keyed adjacency list.
    buffer: HashMap<(u64, u64), i64>,
}

impl Gss {
    /// Creates a GSS sketch with the given configuration.
    pub fn new(config: GssConfig) -> Self {
        assert!(config.side.is_power_of_two(), "side must be a power of two");
        assert!(config.fingerprint_bits >= 1 && config.fingerprint_bits <= 32);
        assert!(config.candidates >= 1);
        let cells = config.side * config.side;
        Self {
            config,
            keys: vec![0u64; cells],
            tags: vec![0u64; cells],
            weights: vec![0i64; cells],
            occupied: vec![false; cells],
            seq: AddressSequence::new(config.side as u64),
            buffer: HashMap::new(),
        }
    }

    /// Creates a GSS sketch with the default configuration scaled to a side
    /// length.
    pub fn with_side(side: usize) -> Self {
        Self::new(GssConfig {
            side,
            ..Default::default()
        })
    }

    /// Number of entries that spilled into the adjacency-list buffer.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Fraction of matrix cells that are occupied.
    pub fn utilization(&self) -> f64 {
        let used = self.occupied.iter().filter(|&&o| o).count();
        used as f64 / self.occupied.len() as f64
    }

    #[inline]
    fn split(&self, key: u64) -> (u64, u32) {
        let h = vertex_hash(key, 0x655E_D00D);
        let fp_mask = (1u64 << self.config.fingerprint_bits) - 1;
        let fp = (h & fp_mask) as u32;
        let addr = (h >> self.config.fingerprint_bits) % self.config.side as u64;
        (addr, fp)
    }

    #[inline]
    fn cell_index(&self, row: u64, col: u64) -> usize {
        row as usize * self.config.side + col as usize
    }

    // LINT-ALLOW(hot-path-panic): `cell_index` maps (row, col) pairs drawn
    // from `seq.iter` (always `< side`) into the `side * side` slabs, so
    // every `idx` is in bounds by construction.
    fn add(&mut self, src_key: u64, dst_key: u64, delta: i64) {
        let (src_addr, src_fp) = self.split(src_key);
        let (dst_addr, dst_fp) = self.split(dst_key);
        let r = self.config.candidates as usize;
        let key = pack_key(src_fp, dst_fp);
        // Square hashing: try the r×r candidate positions in a fixed order,
        // walking the LCG iteratively (one step per candidate) instead of
        // recomputing each address from scratch.
        for (i, row) in self.seq.iter(src_addr).take(r).enumerate() {
            for (j, col) in self.seq.iter(dst_addr).take(r).enumerate() {
                let tag = pack_tag(i as u8, j as u8);
                let idx = self.cell_index(row, col);
                if self.occupied[idx] && self.keys[idx] == key && self.tags[idx] == tag {
                    self.weights[idx] += delta;
                    return;
                }
                if !self.occupied[idx] && delta > 0 {
                    self.occupied[idx] = true;
                    self.keys[idx] = key;
                    self.tags[idx] = tag;
                    self.weights[idx] = delta;
                    return;
                }
            }
        }
        // All candidates hold other edges: spill to the adjacency buffer.
        let entry = self.buffer.entry((src_key, dst_key)).or_insert(0);
        *entry += delta;
        if *entry <= 0 {
            self.buffer.remove(&(src_key, dst_key));
        }
    }
}

impl GraphSketch for Gss {
    fn insert(&mut self, src_key: u64, dst_key: u64, weight: u64) {
        self.add(src_key, dst_key, weight as i64);
    }

    fn delete(&mut self, src_key: u64, dst_key: u64, weight: u64) {
        self.add(src_key, dst_key, -(weight as i64));
    }

    // LINT-ALLOW(hot-path-panic): `cell_index` maps (row, col) pairs drawn
    // from `seq.iter` (always `< side`) into the `side * side` slabs, so
    // every `idx` is in bounds by construction.
    fn edge_weight(&self, src_key: u64, dst_key: u64) -> u64 {
        let (src_addr, src_fp) = self.split(src_key);
        let (dst_addr, dst_fp) = self.split(dst_key);
        let r = self.config.candidates as usize;
        let key = pack_key(src_fp, dst_fp);
        let mut total = 0i64;
        // r×r scattered single-cell probes: a scalar masked compare per cell
        // (empty cells hold zero weight, so no occupancy check is needed).
        for (i, row) in self.seq.iter(src_addr).take(r).enumerate() {
            for (j, col) in self.seq.iter(dst_addr).take(r).enumerate() {
                let idx = self.cell_index(row, col);
                let matches = self.keys[idx] == key && self.tags[idx] == pack_tag(i as u8, j as u8);
                total += self.weights[idx] & (matches as i64).wrapping_neg();
            }
        }
        total += self.buffer.get(&(src_key, dst_key)).copied().unwrap_or(0);
        total.max(0) as u64
    }

    // LINT-ALLOW(hot-path-panic): `row < side` from `seq.iter`, so the row
    // slice `base..base + side` stays within the `side * side` slabs.
    fn src_weight(&self, src_key: u64) -> u64 {
        let (src_addr, src_fp) = self.split(src_key);
        let r = self.config.candidates as usize;
        let side = self.config.side;
        let mut total = 0i64;
        // Each candidate row is one contiguous fixed-length sweep.
        for (i, row) in self.seq.iter(src_addr).take(r).enumerate() {
            let base = row as usize * side;
            total = total.wrapping_add(sum_matching(
                &self.keys[base..base + side],
                &self.tags[base..base + side],
                &self.weights[base..base + side],
                KEY_SRC_MASK,
                u64::from(src_fp) << 32,
                TAG_SRC_MASK,
                (i as u64) << 40,
                0,
                u32::MAX,
            ));
        }
        total += self
            .buffer
            .iter()
            .filter(|&(&(s, _), _)| s == src_key)
            .map(|(_, &w)| w)
            .sum::<i64>();
        total.max(0) as u64
    }

    // LINT-ALLOW(hot-path-panic): the strided walk starts at `col < side`
    // and takes exactly `side` steps of `side`, ending below `side * side`;
    // `prefetch_read_data` bounds-checks its own hint index internally.
    fn dst_weight(&self, dst_key: u64) -> u64 {
        let (dst_addr, dst_fp) = self.split(dst_key);
        let r = self.config.candidates as usize;
        let side = self.config.side;
        let mut total = 0i64;
        // Strided column sweep: one cell per row. Prefetch a few strides
        // ahead to hide the per-row cache miss, and fold each cell with a
        // branchless masked compare.
        for (j, col) in self.seq.iter(dst_addr).take(r).enumerate() {
            let key_pat = u64::from(dst_fp);
            let tag_pat = (j as u64) << 32;
            let mut idx = col as usize;
            for _row in 0..side {
                prefetch_read_data(&self.keys, idx + 4 * side);
                prefetch_read_data(&self.weights, idx + 4 * side);
                let matches = self.keys[idx] & KEY_DST_MASK == key_pat
                    && self.tags[idx] & TAG_DST_MASK == tag_pat;
                total += self.weights[idx] & (matches as i64).wrapping_neg();
                idx += side;
            }
        }
        total += self
            .buffer
            .iter()
            .filter(|&(&(_, d), _)| d == dst_key)
            .map(|(_, &w)| w)
            .sum::<i64>();
        total.max(0) as u64
    }

    fn space_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + self.tags.capacity() * std::mem::size_of::<u64>()
            + self.weights.capacity() * std::mem::size_of::<i64>()
            + self.occupied.capacity()
            + self.buffer.capacity() * std::mem::size_of::<((u64, u64), i64)>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_edge_query() {
        let mut g = Gss::with_side(64);
        g.insert(10, 20, 3);
        g.insert(10, 20, 4);
        assert_eq!(g.edge_weight(10, 20), 7);
    }

    #[test]
    fn fingerprints_separate_colliding_edges() {
        // With a tiny matrix almost everything collides on addresses, but
        // fingerprints keep edges distinguishable far better than TCM.
        let mut g = Gss::new(GssConfig {
            side: 8,
            fingerprint_bits: 24,
            candidates: 4,
        });
        let mut truth = std::collections::HashMap::new();
        for i in 0..500u64 {
            let (s, d) = (i % 40, (i * 7) % 40);
            g.insert(s, d, 1);
            *truth.entry((s, d)).or_insert(0u64) += 1;
        }
        let mut exact_hits = 0;
        for (&(s, d), &w) in &truth {
            let est = g.edge_weight(s, d);
            assert!(est >= w, "GSS must not underestimate");
            if est == w {
                exact_hits += 1;
            }
        }
        assert!(
            exact_hits as f64 / truth.len() as f64 > 0.95,
            "GSS should answer nearly all edge queries exactly"
        );
    }

    #[test]
    fn buffer_absorbs_overflow() {
        let mut g = Gss::new(GssConfig {
            side: 2,
            fingerprint_bits: 16,
            candidates: 1,
        });
        for i in 0..100u64 {
            g.insert(i, i + 1000, 1);
        }
        assert!(g.buffer_len() > 0, "tiny matrix must overflow to buffer");
        for i in 0..100u64 {
            assert!(g.edge_weight(i, i + 1000) >= 1);
        }
    }

    #[test]
    fn vertex_queries_aggregate() {
        let mut g = Gss::with_side(128);
        g.insert(1, 2, 5);
        g.insert(1, 3, 2);
        g.insert(9, 2, 1);
        assert!(g.src_weight(1) >= 7);
        assert!(g.dst_weight(2) >= 6);
    }

    #[test]
    fn delete_reverses_insert() {
        let mut g = Gss::with_side(64);
        g.insert(3, 4, 9);
        g.delete(3, 4, 9);
        assert_eq!(g.edge_weight(3, 4), 0);
    }

    #[test]
    fn delete_from_buffer() {
        let mut g = Gss::new(GssConfig {
            side: 2,
            fingerprint_bits: 8,
            candidates: 1,
        });
        for i in 0..50u64 {
            g.insert(i, i + 500, 2);
        }
        let before = g.buffer_len();
        assert!(before > 0);
        // Delete one buffered edge entirely.
        g.delete(49, 549, 2);
        assert!(g.edge_weight(49, 549) == 0 || g.buffer_len() <= before);
    }

    #[test]
    fn utilization_reflects_occupancy() {
        let mut g = Gss::with_side(16);
        assert_eq!(g.utilization(), 0.0);
        g.insert(1, 2, 1);
        assert!(g.utilization() > 0.0);
    }

    #[test]
    fn space_accounts_for_buffer() {
        let g = Gss::with_side(64);
        assert!(g.space_bytes() >= 64 * 64 * 17);
    }

    #[test]
    fn vertex_sweeps_match_per_cell_reference() {
        // The fixed-length SoA sweeps must agree exactly with a scalar
        // occupancy-checked walk over the same grid — including negative
        // cell weights left behind by over-deletion.
        let mut g = Gss::new(GssConfig {
            side: 16,
            fingerprint_bits: 12,
            candidates: 3,
        });
        for i in 0..400u64 {
            g.insert(i % 37, (i * 11) % 37, 1 + i % 4);
        }
        for i in 0..40u64 {
            g.delete(i % 37, (i * 11) % 37, 3);
        }
        for v in 0..37u64 {
            let (addr, fp) = g.split(v);
            let r = g.config.candidates as usize;
            let mut src_ref = 0i64;
            for (i, row) in g.seq.iter(addr).take(r).enumerate() {
                let base = row as usize * g.config.side;
                for idx in base..base + g.config.side {
                    if g.occupied[idx]
                        && (g.keys[idx] >> 32) as u32 == fp
                        && g.tags[idx] >> 40 == i as u64
                    {
                        src_ref += g.weights[idx];
                    }
                }
            }
            src_ref += g
                .buffer
                .iter()
                .filter(|&(&(s, _), _)| s == v)
                .map(|(_, &w)| w)
                .sum::<i64>();
            assert_eq!(g.src_weight(v), src_ref.max(0) as u64, "src v={v}");

            let mut dst_ref = 0i64;
            for (j, col) in g.seq.iter(addr).take(r).enumerate() {
                for row in 0..g.config.side {
                    let idx = row * g.config.side + col as usize;
                    if g.occupied[idx]
                        && g.keys[idx] as u32 == fp
                        && (g.tags[idx] >> 32) & 0xFF == j as u64
                    {
                        dst_ref += g.weights[idx];
                    }
                }
            }
            dst_ref += g
                .buffer
                .iter()
                .filter(|&(&(_, d), _)| d == v)
                .map(|(_, &w)| w)
                .sum::<i64>();
            assert_eq!(g.dst_weight(v), dst_ref.max(0) as u64, "dst v={v}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_side_panics() {
        let _ = Gss::with_side(100);
    }
}
