//! GSS (Gou et al., ICDE'19): "Fast and accurate graph stream summarization".
//!
//! GSS improves on TCM by storing a *fingerprint* of the edge in each matrix
//! cell so that colliding edges can be told apart. Each vertex hash is split
//! into an address part (row/column) and a fingerprint part; square hashing
//! gives every edge `r × r` candidate cells. An edge is stored in the first
//! candidate cell that is empty or already holds its fingerprint pair; if all
//! candidates are occupied by other edges, the edge spills into an
//! adjacency-list buffer keyed by the exact fingerprint pair. Queries check
//! the candidate cells and the buffer, so GSS only errs when two distinct
//! edges share both the address *and* the fingerprint pair.

use crate::GraphSketch;
use higgs_common::hashing::{vertex_hash, AddressSequence};
use std::collections::HashMap;

/// One cell of the GSS matrix: a stored fingerprint pair and its weight,
/// plus the square-hashing index pair identifying which candidate position
/// the edge occupies.
#[derive(Clone, Copy, Debug, Default)]
struct Cell {
    occupied: bool,
    fp_src: u32,
    fp_dst: u32,
    idx_src: u8,
    idx_dst: u8,
    weight: i64,
}

/// Configuration of a [`Gss`] sketch.
#[derive(Clone, Copy, Debug)]
pub struct GssConfig {
    /// Side length of the square matrix (power of two).
    pub side: usize,
    /// Fingerprint length in bits (≤ 32 per endpoint).
    pub fingerprint_bits: u32,
    /// Number of candidate addresses per endpoint (square hashing width).
    pub candidates: u32,
}

impl Default for GssConfig {
    fn default() -> Self {
        Self {
            side: 256,
            fingerprint_bits: 16,
            candidates: 4,
        }
    }
}

/// The GSS graph sketch: fingerprinted matrix + adjacency-list buffer.
#[derive(Clone, Debug)]
pub struct Gss {
    config: GssConfig,
    cells: Vec<Cell>,
    seq: AddressSequence,
    /// Spill buffer: exact fingerprint-pair keyed adjacency list.
    buffer: HashMap<(u64, u64), i64>,
}

impl Gss {
    /// Creates a GSS sketch with the given configuration.
    pub fn new(config: GssConfig) -> Self {
        assert!(config.side.is_power_of_two(), "side must be a power of two");
        assert!(config.fingerprint_bits >= 1 && config.fingerprint_bits <= 32);
        assert!(config.candidates >= 1);
        Self {
            config,
            cells: vec![Cell::default(); config.side * config.side],
            seq: AddressSequence::new(config.side as u64),
            buffer: HashMap::new(),
        }
    }

    /// Creates a GSS sketch with the default configuration scaled to a side
    /// length.
    pub fn with_side(side: usize) -> Self {
        Self::new(GssConfig {
            side,
            ..Default::default()
        })
    }

    /// Number of entries that spilled into the adjacency-list buffer.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Fraction of matrix cells that are occupied.
    pub fn utilization(&self) -> f64 {
        let used = self.cells.iter().filter(|c| c.occupied).count();
        used as f64 / self.cells.len() as f64
    }

    #[inline]
    fn split(&self, key: u64) -> (u64, u32) {
        let h = vertex_hash(key, 0x655E_D00D);
        let fp_mask = (1u64 << self.config.fingerprint_bits) - 1;
        let fp = (h & fp_mask) as u32;
        let addr = (h >> self.config.fingerprint_bits) % self.config.side as u64;
        (addr, fp)
    }

    #[inline]
    fn cell_index(&self, row: u64, col: u64) -> usize {
        row as usize * self.config.side + col as usize
    }

    fn add(&mut self, src_key: u64, dst_key: u64, delta: i64) {
        let (src_addr, src_fp) = self.split(src_key);
        let (dst_addr, dst_fp) = self.split(dst_key);
        let r = self.config.candidates as usize;
        // Square hashing: try the r×r candidate positions in a fixed order,
        // walking the LCG iteratively (one step per candidate) instead of
        // recomputing each address from scratch.
        for (i, row) in self.seq.iter(src_addr).take(r).enumerate() {
            for (j, col) in self.seq.iter(dst_addr).take(r).enumerate() {
                let idx = self.cell_index(row, col);
                let cell = &mut self.cells[idx];
                if cell.occupied
                    && cell.fp_src == src_fp
                    && cell.fp_dst == dst_fp
                    && cell.idx_src == i as u8
                    && cell.idx_dst == j as u8
                {
                    cell.weight += delta;
                    return;
                }
                if !cell.occupied && delta > 0 {
                    *cell = Cell {
                        occupied: true,
                        fp_src: src_fp,
                        fp_dst: dst_fp,
                        idx_src: i as u8,
                        idx_dst: j as u8,
                        weight: delta,
                    };
                    return;
                }
            }
        }
        // All candidates hold other edges: spill to the adjacency buffer.
        let entry = self.buffer.entry((src_key, dst_key)).or_insert(0);
        *entry += delta;
        if *entry <= 0 {
            self.buffer.remove(&(src_key, dst_key));
        }
    }
}

impl GraphSketch for Gss {
    fn insert(&mut self, src_key: u64, dst_key: u64, weight: u64) {
        self.add(src_key, dst_key, weight as i64);
    }

    fn delete(&mut self, src_key: u64, dst_key: u64, weight: u64) {
        self.add(src_key, dst_key, -(weight as i64));
    }

    fn edge_weight(&self, src_key: u64, dst_key: u64) -> u64 {
        let (src_addr, src_fp) = self.split(src_key);
        let (dst_addr, dst_fp) = self.split(dst_key);
        let r = self.config.candidates as usize;
        let mut total = 0i64;
        for (i, row) in self.seq.iter(src_addr).take(r).enumerate() {
            for (j, col) in self.seq.iter(dst_addr).take(r).enumerate() {
                let cell = &self.cells[self.cell_index(row, col)];
                if cell.occupied
                    && cell.fp_src == src_fp
                    && cell.fp_dst == dst_fp
                    && cell.idx_src == i as u8
                    && cell.idx_dst == j as u8
                {
                    total += cell.weight;
                }
            }
        }
        total += self.buffer.get(&(src_key, dst_key)).copied().unwrap_or(0);
        total.max(0) as u64
    }

    fn src_weight(&self, src_key: u64) -> u64 {
        let (src_addr, src_fp) = self.split(src_key);
        let r = self.config.candidates as usize;
        let mut total = 0i64;
        for (i, row) in self.seq.iter(src_addr).take(r).enumerate() {
            let base = row as usize * self.config.side;
            for cell in &self.cells[base..base + self.config.side] {
                if cell.occupied && cell.fp_src == src_fp && cell.idx_src == i as u8 {
                    total += cell.weight;
                }
            }
        }
        total += self
            .buffer
            .iter()
            .filter(|&(&(s, _), _)| s == src_key)
            .map(|(_, &w)| w)
            .sum::<i64>();
        total.max(0) as u64
    }

    fn dst_weight(&self, dst_key: u64) -> u64 {
        let (dst_addr, dst_fp) = self.split(dst_key);
        let r = self.config.candidates as usize;
        let mut total = 0i64;
        for (j, col) in self.seq.iter(dst_addr).take(r).enumerate() {
            let col = col as usize;
            for row in 0..self.config.side {
                let cell = &self.cells[row * self.config.side + col];
                if cell.occupied && cell.fp_dst == dst_fp && cell.idx_dst == j as u8 {
                    total += cell.weight;
                }
            }
        }
        total += self
            .buffer
            .iter()
            .filter(|&(&(_, d), _)| d == dst_key)
            .map(|(_, &w)| w)
            .sum::<i64>();
        total.max(0) as u64
    }

    fn space_bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<Cell>()
            + self.buffer.capacity() * std::mem::size_of::<((u64, u64), i64)>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_edge_query() {
        let mut g = Gss::with_side(64);
        g.insert(10, 20, 3);
        g.insert(10, 20, 4);
        assert_eq!(g.edge_weight(10, 20), 7);
    }

    #[test]
    fn fingerprints_separate_colliding_edges() {
        // With a tiny matrix almost everything collides on addresses, but
        // fingerprints keep edges distinguishable far better than TCM.
        let mut g = Gss::new(GssConfig {
            side: 8,
            fingerprint_bits: 24,
            candidates: 4,
        });
        let mut truth = std::collections::HashMap::new();
        for i in 0..500u64 {
            let (s, d) = (i % 40, (i * 7) % 40);
            g.insert(s, d, 1);
            *truth.entry((s, d)).or_insert(0u64) += 1;
        }
        let mut exact_hits = 0;
        for (&(s, d), &w) in &truth {
            let est = g.edge_weight(s, d);
            assert!(est >= w, "GSS must not underestimate");
            if est == w {
                exact_hits += 1;
            }
        }
        assert!(
            exact_hits as f64 / truth.len() as f64 > 0.95,
            "GSS should answer nearly all edge queries exactly"
        );
    }

    #[test]
    fn buffer_absorbs_overflow() {
        let mut g = Gss::new(GssConfig {
            side: 2,
            fingerprint_bits: 16,
            candidates: 1,
        });
        for i in 0..100u64 {
            g.insert(i, i + 1000, 1);
        }
        assert!(g.buffer_len() > 0, "tiny matrix must overflow to buffer");
        for i in 0..100u64 {
            assert!(g.edge_weight(i, i + 1000) >= 1);
        }
    }

    #[test]
    fn vertex_queries_aggregate() {
        let mut g = Gss::with_side(128);
        g.insert(1, 2, 5);
        g.insert(1, 3, 2);
        g.insert(9, 2, 1);
        assert!(g.src_weight(1) >= 7);
        assert!(g.dst_weight(2) >= 6);
    }

    #[test]
    fn delete_reverses_insert() {
        let mut g = Gss::with_side(64);
        g.insert(3, 4, 9);
        g.delete(3, 4, 9);
        assert_eq!(g.edge_weight(3, 4), 0);
    }

    #[test]
    fn delete_from_buffer() {
        let mut g = Gss::new(GssConfig {
            side: 2,
            fingerprint_bits: 8,
            candidates: 1,
        });
        for i in 0..50u64 {
            g.insert(i, i + 500, 2);
        }
        let before = g.buffer_len();
        assert!(before > 0);
        // Delete one buffered edge entirely.
        g.delete(49, 549, 2);
        assert!(g.edge_weight(49, 549) == 0 || g.buffer_len() <= before);
    }

    #[test]
    fn utilization_reflects_occupancy() {
        let mut g = Gss::with_side(16);
        assert_eq!(g.utilization(), 0.0);
        g.insert(1, 2, 1);
        assert!(g.utilization() > 0.0);
    }

    #[test]
    fn space_accounts_for_buffer() {
        let g = Gss::with_side(64);
        assert!(g.space_bytes() >= 64 * 64 * std::mem::size_of::<Cell>());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_side_panics() {
        let _ = Gss::with_side(100);
    }
}
