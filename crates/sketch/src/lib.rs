//! # higgs-sketch
//!
//! Non-temporal graph-stream sketch substrates used by the HIGGS
//! reproduction, following the technical-evolution roadmap of Fig. 4 in the
//! paper:
//!
//! * [`CountMinSketch`] — the classic frequency sketch (Cormode &
//!   Muthukrishnan) that everything else builds on,
//! * [`Tcm`] — TCM (SIGMOD'16): a set of compressed matrices, one per hash
//!   function, supporting edge and vertex queries,
//! * [`Gss`] — GSS (ICDE'19): a fingerprinted matrix with square hashing and
//!   an adjacency-list buffer,
//! * [`Auxo`] — Auxo (VLDB'23): a prefix-embedded tree (PET) of fingerprinted
//!   matrices with proportionally growing levels.
//!
//! These structures are *not* time-aware; the temporal baselines in
//! `higgs-baselines` (PGSS, Horae, AuxoTime) compose them with top-down
//! temporal-domain decomposition. All of them key edges by opaque `u64`
//! source/destination keys so callers can fold temporal prefixes into the
//! keys (as Horae does).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auxo;
pub mod countmin;
pub mod gss;
pub mod tcm;

pub use auxo::Auxo;
pub use countmin::CountMinSketch;
pub use gss::Gss;
pub use tcm::Tcm;

/// A non-temporal graph sketch over opaque `u64` vertex keys.
///
/// `src_weight` / `dst_weight` answer vertex queries (aggregate over all
/// outgoing / incoming edges of the key); `edge_weight` answers edge queries.
/// All estimates have one-sided error: they never underestimate.
pub trait GraphSketch {
    /// Adds `weight` to the edge `src_key → dst_key`.
    fn insert(&mut self, src_key: u64, dst_key: u64, weight: u64);

    /// Removes `weight` from the edge `src_key → dst_key` (saturating).
    fn delete(&mut self, src_key: u64, dst_key: u64, weight: u64);

    /// Estimated aggregated weight of the edge `src_key → dst_key`.
    fn edge_weight(&self, src_key: u64, dst_key: u64) -> u64;

    /// Estimated aggregated weight of all edges whose source is `src_key`.
    fn src_weight(&self, src_key: u64) -> u64;

    /// Estimated aggregated weight of all edges whose destination is
    /// `dst_key`.
    fn dst_weight(&self, dst_key: u64) -> u64;

    /// Main-memory footprint in bytes.
    fn space_bytes(&self) -> usize;
}
