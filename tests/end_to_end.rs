//! End-to-end pipeline tests: generate a dataset preset, feed it through
//! HIGGS and every baseline, and run the full query workload machinery the
//! benchmark harness uses.

use higgs::{HiggsConfig, HiggsSummary};
use higgs_baselines::{AuxoTime, AuxoTimeConfig, Horae, HoraeConfig, Pgss, PgssConfig};
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::{ExactTemporalGraph, SummaryExt, TemporalGraphSummary};

fn competitors(edges: usize, slices: u64) -> Vec<Box<dyn TemporalGraphSummary>> {
    vec![
        Box::new(HiggsSummary::new(HiggsConfig::paper_default())),
        Box::new(Pgss::new(PgssConfig::for_stream(edges, slices))),
        Box::new(Horae::new(HoraeConfig::for_stream(edges, slices))),
        Box::new(Horae::compact(HoraeConfig::for_stream(edges, slices))),
        Box::new(AuxoTime::new(AuxoTimeConfig::for_stream(edges, slices))),
        Box::new(AuxoTime::compact(AuxoTimeConfig::for_stream(edges, slices))),
    ]
}

#[test]
fn every_summary_ingests_a_preset_and_answers_all_query_kinds() {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let exact = ExactTemporalGraph::from_edges(stream.edges());
    let mut builder = WorkloadBuilder::new(&stream, 1);
    let workload = builder.mixed_workload(25, 10, 5, 2, 5_000);

    for mut summary in competitors(stream.len(), slices) {
        summary.insert_all(stream.edges());
        assert!(summary.space_bytes() > 0, "{}", summary.name());

        for q in &workload.edge_queries {
            let est = summary.run_edge_query(q);
            let truth = exact.run_edge_query(q);
            assert!(
                est >= truth,
                "{} underestimated an edge query",
                summary.name()
            );
        }
        for q in &workload.vertex_queries {
            assert!(
                summary.run_vertex_query(q) >= exact.run_vertex_query(q),
                "{} underestimated a vertex query",
                summary.name()
            );
        }
        for q in &workload.path_queries {
            assert!(summary.path_query(q) >= exact.path_query(q));
        }
        for q in &workload.subgraph_queries {
            assert!(summary.subgraph_query(q) >= exact.subgraph_query(q));
        }
    }
}

#[test]
fn higgs_tracks_the_whole_stream_shape() {
    let stream = DatasetPreset::WikiTalk.generate(ExperimentScale::Smoke);
    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    summary.insert_all(stream.edges());
    assert_eq!(summary.total_items(), stream.len() as u64);
    let span = stream.time_span().unwrap();
    let covered = summary.time_span().unwrap();
    assert_eq!(covered.start, span.start);
    assert_eq!(covered.end, span.end);
    assert!(
        summary.height() >= 2,
        "real streams should build a hierarchy"
    );
    // Highly skewed streams repeat a few hot edges at many timestamps, which
    // caps per-leaf utilisation (each occurrence needs its own entry in the
    // same small set of candidate buckets) — so only require it to be sane.
    let util = summary.average_leaf_utilization();
    assert!(util > 0.01 && util <= 1.0, "implausible utilisation {util}");
}

#[test]
fn workload_builder_and_exact_store_agree_on_nonzero_truths() {
    // Edge queries sampled from the stream should mostly have non-zero truth
    // when the range spans the whole stream, which is what ARE needs.
    let stream = DatasetPreset::Stackoverflow.generate(ExperimentScale::Smoke);
    let exact = ExactTemporalGraph::from_edges(stream.edges());
    let span_len = stream.time_span().unwrap().len();
    let mut builder = WorkloadBuilder::new(&stream, 3);
    let queries = builder.edge_queries(100, span_len);
    let nonzero = queries
        .iter()
        .filter(|q| exact.edge_query(q.src, q.dst, q.range) > 0)
        .count();
    assert!(
        nonzero >= 95,
        "expected almost all truths non-zero, got {nonzero}"
    );
}
