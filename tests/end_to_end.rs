//! End-to-end pipeline tests: generate a dataset preset, feed it through
//! HIGGS and every baseline, and run the full query workload machinery the
//! benchmark harness uses.

use higgs::{HiggsConfig, HiggsSummary};
use higgs_baselines::{AuxoTime, AuxoTimeConfig, Horae, HoraeConfig, Pgss, PgssConfig};
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::{ExactTemporalGraph, Query, SummaryExt, TemporalGraphSummary};

fn competitors(edges: usize, slices: u64) -> Vec<Box<dyn TemporalGraphSummary>> {
    vec![
        Box::new(HiggsSummary::new(HiggsConfig::paper_default())),
        Box::new(Pgss::new(PgssConfig::for_stream(edges, slices))),
        Box::new(Horae::new(HoraeConfig::for_stream(edges, slices))),
        Box::new(Horae::compact(HoraeConfig::for_stream(edges, slices))),
        Box::new(AuxoTime::new(AuxoTimeConfig::for_stream(edges, slices))),
        Box::new(AuxoTime::compact(AuxoTimeConfig::for_stream(edges, slices))),
    ]
}

#[test]
fn every_summary_ingests_a_preset_and_answers_all_query_kinds() {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let exact = ExactTemporalGraph::from_edges(stream.edges());
    let mut builder = WorkloadBuilder::new(&stream, 1);
    let workload = builder.mixed_workload(25, 10, 5, 2, 5_000);

    // Every competitor is driven through BOTH surfaces: the legacy
    // per-primitive composition (SummaryExt) and the typed batch executor.
    // Estimates must be one-sided against the truth, and the two surfaces
    // must agree bit-for-bit.
    let batch = workload.to_batch();
    let truths = exact.query_batch(batch.queries());
    for mut summary in competitors(stream.len(), slices) {
        summary.insert_all(stream.edges());
        assert!(summary.space_bytes() > 0, "{}", summary.name());

        let estimates = summary.query_batch(batch.queries());
        for ((est, truth), q) in estimates.iter().zip(&truths).zip(batch.iter()) {
            assert!(
                est >= truth,
                "{} underestimated a {} query",
                summary.name(),
                q.kind_label()
            );
        }

        let legacy: Vec<u64> = workload
            .edge_queries
            .iter()
            .map(|q| summary.run_edge_query(q))
            .chain(
                workload
                    .vertex_queries
                    .iter()
                    .map(|q| summary.run_vertex_query(q)),
            )
            .chain(workload.path_queries.iter().map(|q| summary.path_query(q)))
            .chain(
                workload
                    .subgraph_queries
                    .iter()
                    .map(|q| summary.subgraph_query(q)),
            )
            .collect();
        assert_eq!(
            estimates,
            legacy,
            "{}: batch executor diverged from the per-primitive composition",
            summary.name()
        );
    }
}

#[test]
fn typed_single_queries_match_primitive_surface_end_to_end() {
    let stream = DatasetPreset::WikiTalk.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let mut builder = WorkloadBuilder::new(&stream, 9);
    let workload = builder.mixed_workload(10, 10, 4, 2, 20_000);
    for mut summary in competitors(stream.len(), slices) {
        summary.insert_all(stream.edges());
        for q in workload.iter() {
            let typed = summary.query(&q);
            let primitive = match &q {
                Query::Edge(e) => summary.run_edge_query(e),
                Query::Vertex(v) => summary.run_vertex_query(v),
                Query::Path(p) => summary.path_query(p),
                Query::Subgraph(s) => summary.subgraph_query(s),
            };
            assert_eq!(typed, primitive, "{}", summary.name());
        }
    }
}

#[test]
fn higgs_tracks_the_whole_stream_shape() {
    let stream = DatasetPreset::WikiTalk.generate(ExperimentScale::Smoke);
    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    summary.insert_all(stream.edges());
    assert_eq!(summary.total_items(), stream.len() as u64);
    let span = stream.time_span().unwrap();
    let covered = summary.time_span().unwrap();
    assert_eq!(covered.start, span.start);
    assert_eq!(covered.end, span.end);
    assert!(
        summary.height() >= 2,
        "real streams should build a hierarchy"
    );
    // Highly skewed streams repeat a few hot edges at many timestamps, which
    // caps per-leaf utilisation (each occurrence needs its own entry in the
    // same small set of candidate buckets) — so only require it to be sane.
    let util = summary.average_leaf_utilization();
    assert!(util > 0.01 && util <= 1.0, "implausible utilisation {util}");
}

#[test]
fn workload_builder_and_exact_store_agree_on_nonzero_truths() {
    // Edge queries sampled from the stream should mostly have non-zero truth
    // when the range spans the whole stream, which is what ARE needs.
    let stream = DatasetPreset::Stackoverflow.generate(ExperimentScale::Smoke);
    let exact = ExactTemporalGraph::from_edges(stream.edges());
    let span_len = stream.time_span().unwrap().len();
    let mut builder = WorkloadBuilder::new(&stream, 3);
    let queries = builder.edge_queries(100, span_len);
    let nonzero = queries
        .iter()
        .filter(|q| exact.edge_query(q.src, q.dst, q.range) > 0)
        .count();
    assert!(
        nonzero >= 95,
        "expected almost all truths non-zero, got {nonzero}"
    );
}
