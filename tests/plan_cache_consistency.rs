//! Cross-batch plan-cache consistency: cached-plan query results must be
//! **bit-identical** to fresh-plan results across randomly interleaved
//! inserts, deletes, and queries — on a single [`HiggsSummary`] and on
//! [`ShardedHiggs`] at 1/2/4 shards — and an epoch bump after deferred
//! aggregation materialises must invalidate the affected cache entries.
//!
//! The reference ("fresh-plan") executor is the same code with
//! `plan_cache_capacity(0)`: every typed query then rebuilds its plan, which
//! is exactly the pre-cache behaviour. Both sides share decomposition and
//! evaluation, so equality must hold bit-for-bit even under heavy fingerprint
//! collisions.

use higgs::{HiggsConfig, HiggsSummary, ShardedHiggs};
use higgs_common::{
    Query, StreamEdge, SummaryExt, TemporalGraphSummary, TimeRange, VertexDirection,
};
use proptest::prelude::*;

const MAX_T: u64 = 2_000;

fn collision_heavy_config(plan_cache_capacity: usize) -> HiggsConfig {
    HiggsConfig::builder()
        .d1(4)
        .f1_bits(10)
        .bucket_entries(2)
        .mapping_addresses(2)
        .plan_cache_capacity(plan_cache_capacity)
        .build()
        .expect("valid test configuration")
}

fn sharded_config(shards: usize, plan_cache_capacity: usize) -> HiggsConfig {
    HiggsConfig::builder()
        .shards(shards)
        .plan_cache_capacity(plan_cache_capacity)
        .build()
        .expect("valid sharded configuration")
}

fn edge_strategy() -> impl Strategy<Value = StreamEdge> {
    (0u64..40, 0u64..40, 1u64..5, 0u64..MAX_T).prop_map(|(s, d, w, t)| StreamEdge::new(s, d, w, t))
}

fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<StreamEdge>> {
    prop::collection::vec(edge_strategy(), 8..max_len).prop_map(|mut edges| {
        edges.sort_by_key(|e| e.timestamp);
        edges
    })
}

/// Random typed queries over a small set of shared windows, so repeated
/// batches genuinely exercise the cache's hit path.
fn query_strategy() -> impl Strategy<Value = Query> {
    (0u8..4, 0u64..40, 0u64..40, 0u64..40, 0u64..6).prop_map(|(kind, a, b, c, window)| {
        let start = window * (MAX_T / 6);
        let range = TimeRange::new(start, start + MAX_T / 3);
        match kind {
            0 => Query::edge(a, b, range),
            1 => Query::vertex(
                a,
                if b % 2 == 0 {
                    VertexDirection::Out
                } else {
                    VertexDirection::In
                },
                range,
            ),
            2 => Query::path(vec![a, b, c, (a + c) % 40], range),
            _ => Query::subgraph(vec![(a, b), (b, c), (c, a)], range),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single summary, collision-heavy parameters: interleave inserts,
    /// deletes, and repeated query batches; the cached executor must stay
    /// bit-identical to the cache-disabled executor *and* to the uncached
    /// per-primitive composition at every step.
    #[test]
    fn cached_plans_bit_identical_on_single_summary(
        edges in stream_strategy(240),
        queries in prop::collection::vec(query_strategy(), 4..16),
    ) {
        let mut cached = HiggsSummary::new(collision_heavy_config(16));
        let mut fresh = HiggsSummary::new(collision_heavy_config(0));
        let segments = edges.chunks(edges.len().div_ceil(3)).collect::<Vec<_>>();
        for (round, segment) in segments.iter().enumerate() {
            for e in *segment {
                cached.insert(e);
                fresh.insert(e);
            }
            // Delete a deterministic sprinkling of this segment's edges.
            for e in segment.iter().step_by(7) {
                cached.delete(e);
                fresh.delete(e);
            }
            // Submit the batch twice: the second submission runs fully warm
            // on the cached side (zero boundary searches) yet must match the
            // always-fresh side bit for bit.
            let cold = cached.query_batch(&queries);
            cached.reset_plan_count();
            let warm = cached.query_batch(&queries);
            prop_assert_eq!(
                cached.plans_built(), 0,
                "round {}: warm batch must build zero plans", round
            );
            prop_assert_eq!(&cold, &warm, "cache hit changed results");
            let reference = fresh.query_batch(&queries);
            prop_assert_eq!(&warm, &reference, "cached diverged from fresh");
            // The per-primitive composition (which never touches the cache)
            // must agree as well.
            let primitive: Vec<u64> = queries
                .iter()
                .map(|q| match q {
                    Query::Edge(q) => cached.run_edge_query(q),
                    Query::Vertex(q) => cached.run_vertex_query(q),
                    Query::Path(q) => cached.path_query(q),
                    Query::Subgraph(q) => cached.subgraph_query(q),
                })
                .collect();
            prop_assert_eq!(&warm, &primitive, "cached diverged from primitives");
        }
        prop_assert!(cached.plan_cache_hits() > 0, "cache never hit");
    }

    /// ShardedHiggs at 1/2/4 shards: identical interleaved workloads on a
    /// cached and a cache-disabled service must agree bit-for-bit at every
    /// step (per-shard decomposition is identical on both sides, so this
    /// holds regardless of collisions).
    #[test]
    fn cached_plans_bit_identical_on_sharded_service(
        edges in stream_strategy(160),
        queries in prop::collection::vec(query_strategy(), 4..12),
    ) {
        for shards in [1usize, 2, 4] {
            let mut cached = ShardedHiggs::new(sharded_config(shards, 16));
            let mut fresh = ShardedHiggs::new(sharded_config(shards, 0));
            let segments = edges.chunks(edges.len().div_ceil(2)).collect::<Vec<_>>();
            for segment in &segments {
                cached.insert_all(segment);
                fresh.insert_all(segment);
                for e in segment.iter().step_by(5) {
                    cached.delete(e);
                    fresh.delete(e);
                }
                let first = cached.query_batch(&queries);
                prop_assert_eq!(
                    &first,
                    &fresh.query_batch(&queries),
                    "{} shards: cached diverged from fresh", shards
                );
                // Warm re-submission: zero boundary searches anywhere.
                cached.reset_plan_count();
                prop_assert_eq!(&cached.query_batch(&queries), &first);
                prop_assert_eq!(
                    cached.plans_built(), 0,
                    "{} shards: warm batch must build zero plans", shards
                );
            }
        }
    }
}

/// Regression test for the epoch/aggregation interaction: a plan cached
/// while aggregation is deferred descends to the leaves; materialising the
/// aggregates must bump the epoch and invalidate it, because a fresh plan
/// targets the aggregate matrices (whose coarser fingerprints need not be
/// bit-identical to leaf descent under collisions).
#[test]
fn epoch_bump_after_deferred_aggregation_invalidates_cache() {
    let mut summary = HiggsSummary::with_deferred_aggregation(collision_heavy_config(8));
    for i in 0..4_000u64 {
        summary.insert(&StreamEdge::new(i % 40, (i * 7) % 40, 1, i % MAX_T));
    }
    let windows = [
        TimeRange::new(0, MAX_T - 1),
        TimeRange::new(100, 1_200),
        TimeRange::new(500, 1_900),
    ];
    let batch: Vec<Query> = windows
        .iter()
        .flat_map(|&r| {
            [
                Query::edge(3, 21, r),
                Query::vertex(5, VertexDirection::In, r),
                Query::path(vec![1, 7, 9, 23], r),
            ]
        })
        .collect();

    // Cache plans while every aggregate is still unmaterialised.
    let before = summary.query_batch(&batch);
    summary.reset_plan_count();
    assert_eq!(summary.query_batch(&batch), before, "warm pre-materialise");
    assert_eq!(summary.plans_built(), 0);

    let epoch_before = summary.mutation_epoch();
    summary.finalize_aggregations();
    assert!(
        summary.mutation_epoch() > epoch_before,
        "materialisation must bump the mutation epoch"
    );

    // Every affected entry must have been invalidated: the next batch plans
    // afresh, and its results match the uncached primitives (which always
    // plan against the current, fully aggregated tree).
    summary.reset_plan_count();
    let after = summary.query_batch(&batch);
    assert_eq!(
        summary.plans_built(),
        windows.len() as u64,
        "stale plans must be rebuilt after materialisation"
    );
    let primitive: Vec<u64> = batch
        .iter()
        .map(|q| match q {
            Query::Edge(q) => summary.run_edge_query(q),
            Query::Vertex(q) => summary.run_vertex_query(q),
            Query::Path(q) => summary.path_query(q),
            _ => unreachable!("batch holds no subgraph queries"),
        })
        .collect();
    assert_eq!(
        after, primitive,
        "post-materialisation results must be fresh"
    );
}

/// The acceptance-criterion assertion in its purest form: a fully warm
/// repeated-window batch runs zero Algorithm-3 boundary searches.
#[test]
fn fully_warm_batch_builds_zero_plans() {
    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    for i in 0..5_000u64 {
        summary.insert(&StreamEdge::new(i % 200, (i * 13) % 200, 1, i));
    }
    // A sliding-window screen: 40 windows, one 3-hop path each.
    let batch: Vec<Query> = (0..40u64)
        .map(|w| {
            Query::path(
                vec![w, (w * 13) % 200, (w * 169) % 200, (w + 1) % 200],
                TimeRange::new(w * 100, w * 100 + 499),
            )
        })
        .collect();
    let cold = summary.query_batch(&batch);
    summary.reset_plan_count();
    let warm = summary.query_batch(&batch);
    assert_eq!(
        summary.plans_built(),
        0,
        "warm batch must skip all planning"
    );
    assert_eq!(cold, warm);
    assert!(summary.plan_cache_hits() >= 40);
}
