//! Warm-follower replication: journal-segment shipping, lag accounting,
//! read-replica serving fan-out, and promotion.
//!
//! A [`Follower`] bootstraps from a leader directory's snapshot and then
//! ships the per-shard journal tails on every `sync`. The contract: every
//! record the leader acknowledged is either in the snapshot the follower
//! restored or in a journal segment a later sync ships — so a synced
//! follower answers bit-identically to its leader, and a promoted follower
//! serves the complete acknowledged history.

use higgs::{
    Follower, HiggsConfig, IngestError, JournalMode, ReplicaError, ReplicaService, ShardedHiggs,
    SnapshotError, Store, StoreOptions,
};
use higgs_common::{Query, StreamEdge, TemporalGraphSummary, TimeRange};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "higgs-replica-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(shards: usize) -> HiggsConfig {
    HiggsConfig::builder()
        .shards(shards)
        .journal_mode(JournalMode::Buffered)
        .build()
        .expect("valid durable configuration")
}

fn workload(n: u64) -> Vec<StreamEdge> {
    (0..n)
        .map(|i| StreamEdge::new(i % 40, (i * 17) % 40, 1 + i % 3, i))
        .collect()
}

fn probes() -> Vec<Query> {
    (0..30u64)
        .map(|k| Query::edge(k % 40, (k * 17) % 40, TimeRange::all()))
        .collect()
}

/// A leader with a snapshot (the follower's bootstrap basis) plus a journal
/// tail the follower has to ship.
fn seeded_leader(dir: &PathBuf, shards: usize, snapshotted: &[StreamEdge]) -> ShardedHiggs {
    let mut leader =
        Store::open(StoreOptions::durable(durable_config(shards), dir)).expect("leader");
    for e in snapshotted {
        leader.insert(e);
    }
    leader.flush();
    leader.snapshot_to_dir(dir).expect("leader snapshot");
    leader
}

/// Bootstrap + sync reaches the leader's exact state, at every shard count,
/// with the journal tail carrying inserts *and* deletes.
#[test]
fn synced_follower_answers_bit_identically_to_its_leader() {
    let edges = workload(1_000);
    let (snapshotted, tail) = edges.split_at(600);
    for shards in [1usize, 2, 4] {
        let dir = temp_dir(&format!("sync-{shards}"));
        let mut leader = seeded_leader(&dir, shards, snapshotted);

        let mut follower = Store::follow(StoreOptions::restore(&dir)).expect("bootstrap");
        assert_eq!(follower.num_shards(), shards);

        // Pre-sync: the follower serves the snapshot only.
        let snapshot_answers = follower.query_batch(&probes());

        for e in tail {
            leader.insert(e);
        }
        for e in tail.iter().step_by(5) {
            leader.delete(e);
        }
        leader.flush();

        // Lag is visible before the sync, zero after it.
        let lag = follower.replication_lag().expect("lag probe");
        assert!(
            lag.records_behind > 0 && lag.bytes_behind > 0,
            "unshipped journal bytes must show as lag, got {lag:?}"
        );
        let progress = follower.sync().expect("sync");
        assert_eq!(progress.records_applied, lag.records_behind);
        assert_eq!(progress.bytes_shipped, lag.bytes_behind);
        let drained = follower.replication_lag().expect("post-sync lag");
        assert_eq!((drained.records_behind, drained.bytes_behind), (0, 0));

        let leader_answers = leader.query_batch(&probes());
        assert_eq!(
            follower.query_batch(&probes()),
            leader_answers,
            "{shards}-shard synced follower must match its leader"
        );
        assert_ne!(
            snapshot_answers, leader_answers,
            "the tail must actually change the answers, or this test is vacuous"
        );
        // Syncs are idempotent between leader appends.
        let nothing = follower.sync().expect("idle sync");
        assert_eq!(nothing.records_applied, 0);

        drop(leader);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// Kill the leader (drop, simulating a crash after ack) and promote: the
/// follower must serve the complete acknowledged history.
#[test]
fn promoted_follower_serves_every_acknowledged_mutation() {
    let edges = workload(800);
    let (snapshotted, tail) = edges.split_at(500);
    let dir = temp_dir("promote");
    let mut leader = seeded_leader(&dir, 2, snapshotted);
    let follower = Store::follow(StoreOptions::restore(&dir)).expect("bootstrap");

    for e in tail {
        leader.insert(e);
    }
    leader.flush();
    let acknowledged = leader.query_batch(&probes());
    // The "crash": every acknowledged mutation is journaled (flush synced
    // the buffered journals), the process is gone.
    drop(leader);

    // Promotion final-syncs, shipping the post-bootstrap tail it never saw.
    let mut promoted = follower.promote().expect("promote");
    assert_eq!(
        promoted.query_batch(&probes()),
        acknowledged,
        "a promoted follower must serve the full acknowledged history"
    );
    // The promoted service is a live leader: it keeps accepting writes.
    promoted.insert(&StreamEdge::new(1, 2, 9, 10_000));
    promoted.flush();
    drop(promoted);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A leader snapshot rotates the journals under the follower's cursors; the
/// follower must refuse to guess (`LeaderTruncated`) and a re-bootstrap
/// resumes cleanly from the new snapshot.
#[test]
fn leader_rotation_is_detected_and_rebootstrap_recovers() {
    let edges = workload(600);
    let (snapshotted, tail) = edges.split_at(300);
    let dir = temp_dir("truncate");
    let mut leader = seeded_leader(&dir, 2, snapshotted);
    let mut follower = Store::follow(StoreOptions::restore(&dir)).expect("bootstrap");

    for e in tail {
        leader.insert(e);
    }
    leader.flush();
    // Rotation: a second snapshot truncates the journals and restamps them.
    leader.snapshot_to_dir(&dir).expect("second snapshot");

    let err = follower
        .sync()
        .expect_err("a rotated journal must not sync");
    assert!(
        matches!(err, ReplicaError::LeaderTruncated { .. }),
        "expected LeaderTruncated, got: {err}"
    );

    let mut fresh = Store::follow(StoreOptions::restore(&dir)).expect("re-bootstrap");
    fresh.sync().expect("fresh covering stamp syncs");
    assert_eq!(
        fresh.query_batch(&probes()),
        leader.query_batch(&probes()),
        "a re-bootstrapped follower must resume from the new snapshot"
    );
    drop(leader);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The serving fan-out: a [`ReplicaService`] keeps syncing in the
/// background, serves coalesced read batches that match the leader, refuses
/// writes with the typed `ReadOnly` error, and reports lag through
/// `ServiceClient::health`.
#[test]
fn replica_service_serves_read_only_batches_and_health() {
    let edges = workload(900);
    let (snapshotted, tail) = edges.split_at(500);
    let dir = temp_dir("serve");
    let mut leader = seeded_leader(&dir, 2, snapshotted);

    let follower = Store::follow(StoreOptions::restore(&dir)).expect("bootstrap");
    let replica = ReplicaService::follow_with_sync_interval(
        follower,
        &durable_config(2),
        Duration::from_millis(1),
    )
    .expect("replica service");
    let client = replica.client();
    assert_eq!(client.num_shards(), 2);

    for e in tail {
        leader.insert(e);
    }
    leader.flush();
    let expected = leader.query_batch(&probes());

    // The background sync catches up within its cadence.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if client.query_batch(&probes()) == Ok(expected.clone()) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica never converged: lag {:?}",
            replica.replication_lag()
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Writes are refused, typed — on every mutation surface.
    let e = StreamEdge::new(1, 2, 3, 99_999);
    assert_eq!(client.insert(&e), Err(IngestError::ReadOnly));
    assert_eq!(client.insert_all(&[e]), Err(IngestError::ReadOnly));
    assert_eq!(client.delete(&e), Err(IngestError::ReadOnly));
    assert_eq!(client.try_insert(&e), Err(IngestError::ReadOnly));
    assert_eq!(client.try_delete(&e), Err(IngestError::ReadOnly));
    client.flush(); // a no-op, never a hang

    // Health: a replica reports lag (zero once converged), no degraded
    // shards, no writer supervision counters.
    let health = client.health();
    assert_eq!(health.degraded, Vec::<usize>::new());
    assert_eq!(health.respawn_counts, vec![0, 0]);
    assert_eq!(health.recovery_errors, vec![None, None]);
    let lag = health.replication_lag.expect("replica clients report lag");
    assert_eq!(lag.records_behind, 0, "converged replica has zero lag");
    assert!(health.replication_error.is_none());

    drop(replica);
    // Surviving clients stay safe after the service drops.
    assert!(client.query(&probes()[0]).is_err());
    assert_eq!(client.insert(&e), Err(IngestError::ReadOnly));
    drop(leader);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A leader's client reports supervision state through the same health
/// surface (no replication fields).
#[test]
fn leader_client_health_reports_supervision_state() {
    let dir = temp_dir("leader-health");
    let leader = Store::open(StoreOptions::durable(durable_config(2), &dir)).expect("leader");
    let service = higgs::HiggsService::wrap(leader, &durable_config(2)).expect("service");
    let client = service.client();
    client.insert(&StreamEdge::new(1, 2, 5, 10)).expect("live");
    assert_eq!(client.query(&Query::edge(1, 2, TimeRange::all())), Ok(5));

    let health = client.health();
    assert_eq!(health.degraded, Vec::<usize>::new());
    assert_eq!(health.respawn_counts, vec![0, 0]);
    assert_eq!(health.recovery_errors, vec![None, None]);
    assert!(health.replication_lag.is_none(), "leaders do not replicate");
    assert!(health.replication_error.is_none());

    drop(service);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Every `ReplicaError` variant renders an actionable cause, and the
/// bootstrap failure path is typed.
#[test]
fn replica_errors_are_typed_and_name_their_cause() {
    // Bootstrapping from nowhere fails with the Snapshot variant.
    let err = Store::follow(StoreOptions::restore(temp_dir("absent")))
        .expect_err("no directory, no follower");
    assert!(
        matches!(err, ReplicaError::Snapshot(_)),
        "expected Snapshot, got: {err}"
    );

    for (err, needle) in [
        (
            ReplicaError::Snapshot(SnapshotError::Corrupt("x".into())),
            "bootstrap failed",
        ),
        (
            ReplicaError::Journal(higgs::JournalError::Corrupt {
                shard: 0,
                record: 7,
                detail: "x".into(),
            }),
            "shipping failed",
        ),
        (ReplicaError::LeaderTruncated { shard: 1 }, "rotated"),
        (
            ReplicaError::Config(
                HiggsConfig::builder()
                    .shards(0)
                    .build()
                    .expect_err("invalid"),
            ),
            "configuration",
        ),
    ] {
        let msg = err.to_string();
        assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        use std::error::Error;
        let _ = err.source();
    }
}

/// `Follower` is usable across threads (queries from one, sync from the
/// owner), which the serving fan-out depends on.
#[test]
fn follower_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Follower>();
    assert_send::<ReplicaService>();
}
