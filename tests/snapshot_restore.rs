//! Snapshot / restore correctness: property tests that a
//! snapshot→restore→query cycle is **bit-identical** to the live summary
//! across random insert/delete workloads — for a single `HiggsSummary`
//! (paper-default and collision-heavy configurations) and for `ShardedHiggs`
//! at 1/2/4 shards — plus corruption tests proving every damaged input maps
//! to a typed `SnapshotError` (never a panic, never a silently wrong
//! answer), and a restored-service liveness check.

use higgs::snapshot::{shard_file_name, MANIFEST_FILE};
use higgs::{
    HiggsConfig, HiggsSummary, ShardedHiggs, SnapshotError, SnapshotManifest, Store, StoreOptions,
};
use higgs_common::codec::CodecError;
use higgs_common::{Query, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const MAX_T: u64 = 2_000;

/// A unique temp directory removed on drop (the workspace has no `tempfile`
/// dependency).
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "higgs-snap-test-{label}-{}-{}",
            std::process::id(),
            // ORDERING: Relaxed — uniqueness counter; any interleaving of
            // increments yields distinct directory names, which is all that
            // matters here.
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn edge_strategy() -> impl Strategy<Value = StreamEdge> {
    (0u64..40, 0u64..40, 1u64..5, 0u64..MAX_T).prop_map(|(s, d, w, t)| StreamEdge::new(s, d, w, t))
}

fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<StreamEdge>> {
    prop::collection::vec(edge_strategy(), 1..max_len).prop_map(|mut edges| {
        edges.sort_by_key(|e| e.timestamp);
        edges
    })
}

fn mixed_query_strategy() -> impl Strategy<Value = Query> {
    (0u8..4, 0u64..40, 0u64..40, 0u64..40, 0u64..8).prop_map(|(kind, a, b, c, window)| {
        let start = window * (MAX_T / 8);
        let range = TimeRange::new(start, start + MAX_T / 4);
        match kind {
            0 => Query::edge(a, b, range),
            1 => Query::vertex(
                a,
                if b % 2 == 0 {
                    VertexDirection::Out
                } else {
                    VertexDirection::In
                },
                range,
            ),
            2 => Query::path(vec![a, b, c, (a + b) % 40], range),
            _ => Query::subgraph(vec![(a, b), (b, c), (c, a)], range),
        }
    })
}

/// Deliberately under-sized parameters: heavy fingerprint collisions and
/// overflow-block usage, so the snapshot codec has to preserve collision
/// state (shared slots, spills, chains) exactly — not just the easy regime.
fn collision_heavy_config(shards: usize) -> HiggsConfig {
    HiggsConfig {
        d1: 4,
        f1_bits: 10,
        r_bits: 1,
        bucket_entries: 2,
        mapping_addresses: 2,
        overflow_blocks: true,
        shards,
        plan_cache_capacity: 8,
        ingest_queue_cap: None,
        pin_workers: false,
        admission_tick: std::time::Duration::ZERO,
        service_queue_depth: None,
        journal_mode: higgs::JournalMode::Off,
    }
}

fn apply_workload(
    summary: &mut dyn TemporalGraphSummary,
    edges: &[StreamEdge],
    delete_mask: &[u8],
) {
    summary.insert_all(edges);
    for (e, m) in edges.iter().zip(delete_mask.iter().cycle()) {
        if *m == 0 {
            summary.delete(e);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn single_summary_round_trips_bit_identically(
        edges in stream_strategy(250),
        delete_mask in prop::collection::vec(0u8..4, 1..64),
        queries in prop::collection::vec(mixed_query_strategy(), 1..40),
    ) {
        for config in [HiggsConfig::paper_default(), collision_heavy_config(1)] {
            let mut live = HiggsSummary::new(config);
            apply_workload(&mut live, &edges, &delete_mask);

            let mut bytes = Vec::new();
            let checksum = live.write_snapshot(&mut bytes).expect("snapshot to memory");
            let restored = HiggsSummary::read_snapshot(&mut bytes.as_slice())
                .expect("restore from memory");

            prop_assert_eq!(restored.total_items(), live.total_items());
            prop_assert_eq!(restored.mutation_epoch(), live.mutation_epoch());
            prop_assert_eq!(restored.leaf_count(), live.leaf_count());
            prop_assert_eq!(restored.query_batch(&queries), live.query_batch(&queries));
            // Raw primitives (the cache-bypassing reference path) agree too.
            for e in edges.iter().step_by(7) {
                prop_assert_eq!(
                    restored.edge_query(e.src, e.dst, TimeRange::all()),
                    live.edge_query(e.src, e.dst, TimeRange::all())
                );
            }

            // Determinism: re-snapshotting the restored summary reproduces
            // the document bit for bit (same checksum, same bytes).
            let mut again = Vec::new();
            let checksum_again = restored.write_snapshot(&mut again).expect("re-snapshot");
            prop_assert_eq!(checksum, checksum_again);
            prop_assert_eq!(bytes, again);
        }
    }

    #[test]
    fn sharded_service_round_trips_bit_identically(
        edges in stream_strategy(220),
        delete_mask in prop::collection::vec(0u8..4, 1..64),
        queries in prop::collection::vec(mixed_query_strategy(), 1..32),
    ) {
        for shards in [1usize, 2, 4] {
            let mut config = collision_heavy_config(shards);
            config.plan_cache_capacity = 16;
            let mut live = ShardedHiggs::new(config);
            apply_workload(&mut live, &edges, &delete_mask);
            let expected = live.query_batch(&queries);

            let dir = TempDir::new("roundtrip");
            let manifest = live.snapshot_to_dir(dir.path()).expect("snapshot to dir");
            prop_assert_eq!(manifest.shard_count(), shards);
            prop_assert_eq!(manifest.total_items(), live.total_items());
            drop(live);

            let restored = Store::open(StoreOptions::restore(dir.path())).expect("restore");
            prop_assert_eq!(restored.num_shards(), shards);
            prop_assert_eq!(restored.query_batch(&queries), expected.clone());

            // The restored service stays live: more mutations land and the
            // result matches a never-snapshotted control.
            let mut restored = restored;
            let mut control = ShardedHiggs::new(config);
            apply_workload(&mut control, &edges, &delete_mask);
            for e in edges.iter().step_by(3) {
                let bumped = StreamEdge::new(e.src, e.dst, e.weight, e.timestamp + MAX_T);
                restored.insert(&bumped);
                control.insert(&bumped);
            }
            for e in edges.iter().step_by(11) {
                restored.delete(e);
                control.delete(e);
            }
            prop_assert_eq!(
                restored.query_batch(&queries),
                control.query_batch(&queries)
            );
            prop_assert_eq!(restored.total_items(), control.total_items());
        }
    }
}

/// Builds a small 4-shard service with enough mass for multi-layer trees.
fn loaded_service(shards: usize) -> ShardedHiggs {
    let config = HiggsConfig::builder()
        .shards(shards)
        .build()
        .expect("valid configuration");
    let mut service = ShardedHiggs::new(config);
    let edges: Vec<StreamEdge> = (0..4_000u64)
        .map(|i| StreamEdge::new(i % 150, (i * 13) % 150, 1 + i % 4, i / 2))
        .collect();
    service.insert_all(&edges);
    service
}

#[test]
fn truncated_shard_file_is_a_typed_error() {
    let dir = TempDir::new("truncate");
    let service = loaded_service(2);
    service.snapshot_to_dir(dir.path()).expect("snapshot");
    drop(service);

    let shard0 = dir.path().join(shard_file_name(0));
    let bytes = std::fs::read(&shard0).expect("read shard file");
    std::fs::write(&shard0, &bytes[..bytes.len() / 2]).expect("truncate shard file");

    match Store::open(StoreOptions::restore(dir.path())) {
        Err(SnapshotError::Codec(CodecError::UnexpectedEof)) => {}
        other => panic!("truncated shard must fail with UnexpectedEof, got {other:?}"),
    }
}

#[test]
fn corrupted_shard_byte_fails_the_checksum() {
    let dir = TempDir::new("bitflip");
    let service = loaded_service(2);
    service.snapshot_to_dir(dir.path()).expect("snapshot");
    drop(service);

    let shard1 = dir.path().join(shard_file_name(1));
    let mut bytes = std::fs::read(&shard1).expect("read shard file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&shard1, &bytes).expect("write corrupted shard");

    match Store::open(StoreOptions::restore(dir.path())) {
        // A flipped byte is caught by the file's own checksum (or, if it
        // lands in a length or structural field, by an earlier structural
        // check) — either way a typed error, never a panic.
        Err(
            SnapshotError::Codec(_)
            | SnapshotError::Corrupt(_)
            | SnapshotError::ShardChecksumMismatch { .. },
        ) => {}
        other => panic!("corrupted shard must fail with a typed error, got {other:?}"),
    }
}

#[test]
fn wrong_manifest_shard_count_is_rejected() {
    // A manifest from a 2-shard snapshot copied over a 4-shard directory:
    // the directory census must catch the disagreement before any shard
    // state is served.
    let dir4 = TempDir::new("count4");
    let dir2 = TempDir::new("count2");
    let service4 = loaded_service(4);
    let service2 = loaded_service(2);
    service4.snapshot_to_dir(dir4.path()).expect("snapshot 4");
    service2.snapshot_to_dir(dir2.path()).expect("snapshot 2");
    drop(service4);
    drop(service2);

    std::fs::copy(
        dir2.path().join(MANIFEST_FILE),
        dir4.path().join(MANIFEST_FILE),
    )
    .expect("swap manifests");

    match Store::open(StoreOptions::restore(dir4.path())) {
        Err(SnapshotError::ShardCountMismatch {
            manifest: 2,
            found: 4,
        }) => {}
        other => panic!("shard-count mismatch must be typed, got {other:?}"),
    }
}

#[test]
fn missing_shard_file_is_rejected() {
    let dir = TempDir::new("missing");
    let service = loaded_service(4);
    service.snapshot_to_dir(dir.path()).expect("snapshot");
    drop(service);
    std::fs::remove_file(dir.path().join(shard_file_name(2))).expect("remove shard 2");

    match Store::open(StoreOptions::restore(dir.path())) {
        Err(SnapshotError::ShardCountMismatch { manifest: 4, found }) => {
            assert!(found < 4, "census must see fewer shard files");
        }
        Err(SnapshotError::MissingShard { shard: 2, .. }) => {}
        other => panic!("missing shard must be typed, got {other:?}"),
    }
}

#[test]
fn resnapshotting_a_smaller_service_into_the_same_dir_stays_restorable() {
    // Regression test: shard files from an earlier, larger snapshot must be
    // removed — otherwise the directory census at restore time rejects a
    // perfectly good (smaller) snapshot with ShardCountMismatch forever.
    let dir = TempDir::new("shrink");
    let big = loaded_service(4);
    big.snapshot_to_dir(dir.path()).expect("snapshot 4 shards");
    drop(big);

    let small = loaded_service(2);
    let expected = small.query_batch(&[Query::edge(3, 39, TimeRange::all())]);
    small
        .snapshot_to_dir(dir.path())
        .expect("re-snapshot 2 shards into the same directory");
    drop(small);

    assert!(
        !dir.path().join(shard_file_name(2)).exists()
            && !dir.path().join(shard_file_name(3)).exists(),
        "stale shard files must be removed"
    );
    let restored = Store::open(StoreOptions::restore(dir.path()))
        .expect("shrunken snapshot directory must restore");
    assert_eq!(restored.num_shards(), 2);
    assert_eq!(
        restored.query_batch(&[Query::edge(3, 39, TimeRange::all())]),
        expected
    );
}

#[test]
fn non_snapshot_files_report_bad_magic() {
    let dir = TempDir::new("magic");
    std::fs::create_dir_all(dir.path()).expect("create dir");
    std::fs::write(dir.path().join(MANIFEST_FILE), b"definitely not a manifest")
        .expect("write junk manifest");
    match Store::open(StoreOptions::restore(dir.path())) {
        Err(SnapshotError::BadMagic { .. }) => {}
        other => panic!("junk manifest must fail with BadMagic, got {other:?}"),
    }

    let mut junk = std::io::Cursor::new(b"short".to_vec());
    match HiggsSummary::read_snapshot(&mut junk) {
        Err(SnapshotError::Codec(CodecError::UnexpectedEof)) => {}
        other => panic!("undersized snapshot must be typed, got {other:?}"),
    }
}

#[test]
fn newer_format_versions_are_refused() {
    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    summary.insert(&StreamEdge::new(1, 2, 3, 4));
    let mut bytes = Vec::new();
    summary.write_snapshot(&mut bytes).expect("snapshot");
    // Patch the version field (bytes 8..12, after the u64 magic): the
    // version check runs before the checksum, so a future-format file is
    // refused outright rather than misparsed.
    bytes[8] = 0xEE;
    match HiggsSummary::read_snapshot(&mut bytes.as_slice()) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert!(found > supported);
        }
        other => panic!("future version must be refused, got {other:?}"),
    }
}

#[test]
fn manifest_is_readable_without_touching_shards() {
    let dir = TempDir::new("manifest");
    let service = loaded_service(3);
    let written = service.snapshot_to_dir(dir.path()).expect("snapshot");
    let read = SnapshotManifest::read_from_dir(dir.path()).expect("read manifest");
    assert_eq!(read, written);
    assert_eq!(read.shard_count(), 3);
    assert_eq!(read.total_items(), service.total_items());
    assert_eq!(read.config.shards, 3);
}

#[test]
fn pin_workers_is_runtime_state_and_not_persisted() {
    // Worker pinning is placement state, not data: a service built with
    // pinning enabled must snapshot and restore bit-identically, and the
    // restored configuration must come back *unpinned* (the restoring
    // machine decides its own placement). The format itself is unchanged.
    let config = HiggsConfig::builder()
        .shards(2)
        .pin_workers(true)
        .build()
        .expect("valid configuration");
    let mut service = ShardedHiggs::new(config);
    let edges: Vec<StreamEdge> = (0..2_000u64)
        .map(|i| StreamEdge::new(i % 90, (i * 11) % 90, 1 + i % 3, i))
        .collect();
    service.insert_all(&edges);
    let queries: Vec<Query> = (0..90u64)
        .step_by(7)
        .map(|v| Query::edge(v, (v * 11) % 90, TimeRange::all()))
        .collect();
    let expected = service.query_batch(&queries);

    let dir = TempDir::new("pinned");
    let manifest = service.snapshot_to_dir(dir.path()).expect("snapshot");
    assert!(
        !manifest.config.pin_workers,
        "pinning must not be recorded in the manifest"
    );
    drop(service);

    let restored = Store::open(StoreOptions::restore(dir.path())).expect("restore");
    let restored_manifest = SnapshotManifest::read_from_dir(dir.path()).expect("manifest");
    assert!(!restored_manifest.config.pin_workers);
    assert_eq!(restored.query_batch(&queries), expected);

    // An unpinned service with the same data produces a byte-identical
    // snapshot: pinning can never leak into the format.
    let mut unpinned_config = config;
    unpinned_config.pin_workers = false;
    let mut unpinned = ShardedHiggs::new(unpinned_config);
    unpinned.insert_all(&edges);
    let dir2 = TempDir::new("unpinned");
    unpinned.snapshot_to_dir(dir2.path()).expect("snapshot");
    let pinned_manifest_bytes =
        std::fs::read(dir.path().join(MANIFEST_FILE)).expect("read pinned manifest");
    let unpinned_manifest_bytes =
        std::fs::read(dir2.path().join(MANIFEST_FILE)).expect("read unpinned manifest");
    assert_eq!(pinned_manifest_bytes, unpinned_manifest_bytes);
}

#[test]
fn deferred_aggregation_state_round_trips() {
    // Snapshot a summary whose aggregates have not materialised (deferred
    // mode, no finalize): unmaterialised nodes and the pending-job list must
    // survive, queries stay correct via leaf descent, and finalizing the
    // restored summary must materialise everything.
    let mut live = HiggsSummary::with_deferred_aggregation(collision_heavy_config(1));
    for i in 0..3_000u64 {
        live.insert(&StreamEdge::new(i % 60, (i * 7) % 60, 1, i));
    }
    let mut bytes = Vec::new();
    live.write_snapshot(&mut bytes).expect("snapshot deferred");
    let mut restored = HiggsSummary::read_snapshot(&mut bytes.as_slice()).expect("restore");
    assert!(restored.defers_aggregation());
    let probe = |s: &HiggsSummary| {
        (0..60u64)
            .map(|v| s.edge_query(v, (v * 7) % 60, TimeRange::new(100, 2_500)))
            .collect::<Vec<_>>()
    };
    assert_eq!(probe(&restored), probe(&live));
    restored.finalize_aggregations();
    live.finalize_aggregations();
    assert_eq!(probe(&restored), probe(&live));
}
