//! Writer-thread accounting across shutdown/restore cycles.
//!
//! Restoring a snapshot into a dropped-then-rebuilt service must not leak
//! writer threads: every `ShardedHiggs` teardown joins its writers, and
//! every restore spawns exactly one fresh writer per shard. This test lives
//! in its **own integration-test binary** so the process-wide
//! [`higgs::shard::live_writer_threads`] counter is not perturbed by
//! unrelated tests creating services concurrently — keep it the only test
//! here.

use higgs::shard::live_writer_threads;
use higgs::{HiggsConfig, ShardedHiggs, SnapshotError, Store, StoreOptions};
use higgs_common::{Query, StreamEdge, TemporalGraphSummary, TimeRange};
use std::path::PathBuf;

#[test]
fn restore_cycles_never_leak_writer_threads() {
    assert_eq!(live_writer_threads(), 0, "test binary must start quiescent");

    let dir: PathBuf =
        std::env::temp_dir().join(format!("higgs-writer-leak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    const SHARDS: usize = 4;
    let config = HiggsConfig::builder()
        .shards(SHARDS)
        .build()
        .expect("valid configuration");
    let mut service = ShardedHiggs::new(config);
    assert_eq!(live_writer_threads(), SHARDS, "one writer per shard");

    let edges: Vec<StreamEdge> = (0..3_000u64)
        .map(|i| StreamEdge::new(i % 100, (i * 11) % 100, 1 + i % 3, i))
        .collect();
    service.insert_all(&edges);
    let queries: Vec<Query> = (0..20u64)
        .map(|k| Query::edge(k, (k * 11) % 100, TimeRange::all()))
        .collect();
    let expected = service.query_batch(&queries);
    service.snapshot_to_dir(&dir).expect("snapshot");

    // Drop joins the writers: the count returns to zero *synchronously*
    // (each writer's counter guard drops before the thread exits, and drop
    // joins every thread).
    drop(service);
    assert_eq!(live_writer_threads(), 0, "drop must join all writers");

    // Repeated restore-then-drop cycles: every cycle spawns exactly SHARDS
    // writers and joins exactly SHARDS writers — no drift in either
    // direction, and the restored state keeps answering identically.
    for cycle in 0..5 {
        let restored = Store::open(StoreOptions::restore(&dir)).expect("restore");
        assert_eq!(
            live_writer_threads(),
            SHARDS,
            "cycle {cycle}: restore must spawn exactly one writer per shard"
        );
        assert_eq!(restored.query_batch(&queries), expected, "cycle {cycle}");
        drop(restored);
        assert_eq!(
            live_writer_threads(),
            0,
            "cycle {cycle}: drop after restore must join all writers"
        );
    }

    // Durable services follow the same accounting: journaled writers are
    // plain writers to the census, and crash-recovery (`new_durable` over a
    // directory with live journal tails) spawns exactly one per shard.
    let durable_dir: PathBuf =
        std::env::temp_dir().join(format!("higgs-writer-leak-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&durable_dir);
    let durable_config = HiggsConfig::builder()
        .shards(SHARDS)
        .journal_mode(higgs::JournalMode::Buffered)
        .build()
        .expect("valid durable configuration");
    let durable =
        Store::open(StoreOptions::durable(durable_config, &durable_dir)).expect("durable service");
    assert_eq!(
        live_writer_threads(),
        SHARDS,
        "durable service: one journaled writer per shard"
    );
    let handle = durable.ingest_handle();
    for e in &edges {
        handle.insert(e).expect("live ingest");
    }
    durable.flush();
    let durable_expected = durable.query_batch(&queries);
    drop(durable);
    assert_eq!(
        live_writer_threads(),
        0,
        "durable drop must join all journaled writers"
    );
    let recovered =
        Store::open(StoreOptions::durable(durable_config, &durable_dir)).expect("journal recovery");
    assert_eq!(
        live_writer_threads(),
        SHARDS,
        "journal-replay recovery must spawn exactly one writer per shard"
    );
    assert_eq!(recovered.query_batch(&queries), durable_expected);
    drop(recovered);
    assert_eq!(
        live_writer_threads(),
        0,
        "drop after recovery must join all writers"
    );
    std::fs::remove_dir_all(&durable_dir).expect("durable cleanup");

    // A *failed* restore must not leak either: corrupt one shard file and
    // verify the error path spawns nothing.
    let shard0 = dir.join(higgs::snapshot::shard_file_name(0));
    let mut bytes = std::fs::read(&shard0).expect("read shard file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&shard0, &bytes).expect("corrupt shard file");
    match Store::open(StoreOptions::restore(&dir)) {
        Err(SnapshotError::Codec(_) | SnapshotError::Corrupt(_)) => {}
        other => panic!("corrupted restore must fail, got {other:?}"),
    }
    assert_eq!(
        live_writer_threads(),
        0,
        "a failed restore must not spawn (let alone leak) writer threads"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
