//! Elastic resharding: property suite over every `N -> M` pair in
//! `{1,2,3,4}²`, plus the typed failure paths.
//!
//! The contract under test is the PR's headline: re-streaming a directory's
//! elastic mutation history through `shard_of` at a new shard count must
//! answer queries **bit-identically** to a service built fresh at that count
//! from the same single-producer workload — inserts *and* deletes, offline
//! (`restore_resharded` / `Store::open_resharded`) and online
//! (`ShardedHiggs::reshard`). Failure paths must be typed and spawn
//! nothing: a corrupt history, a non-elastic directory, or an invalid count
//! leaves the writer census untouched.

use higgs::shard::live_writer_threads;
use higgs::{
    HiggsConfig, JournalMode, OpenMode, ReshardError, ShardedHiggs, SnapshotError, Store,
    StoreOptions,
};
use higgs_common::{Query, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection, Weight};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "higgs-reshard-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn elastic_config(shards: usize) -> HiggsConfig {
    HiggsConfig::builder()
        .shards(shards)
        .journal_mode(JournalMode::Buffered)
        .build()
        .expect("valid elastic configuration")
}

/// A single-producer workload with interleaved deletes: every 7th insert is
/// later deleted, so the fold has to replay both operation kinds in order.
fn workload(n: u64) -> (Vec<StreamEdge>, Vec<StreamEdge>) {
    let inserts: Vec<StreamEdge> = (0..n)
        .map(|i| StreamEdge::new(i % 60, (i * 11) % 60, 1 + i % 5, i))
        .collect();
    let deletes: Vec<StreamEdge> = inserts.iter().step_by(7).copied().collect();
    (inserts, deletes)
}

fn probes() -> Vec<Query> {
    let mut probes: Vec<Query> = (0..40u64)
        .map(|k| Query::edge(k % 60, (k * 11) % 60, TimeRange::new(0, 1_000)))
        .collect();
    probes.push(Query::vertex(7, VertexDirection::Out, TimeRange::all()));
    probes.push(Query::vertex(7, VertexDirection::In, TimeRange::all()));
    probes.push(Query::path(vec![1, 11, 22], TimeRange::all()));
    (0..8u64).for_each(|k| probes.push(Query::edge(k, (k * 11) % 60, TimeRange::new(10, 500))));
    probes
}

/// Reference answers from a fresh (never resharded, never persisted)
/// service at `shards`, fed by `feed` in the **exact order** the system
/// under test saw its mutations — the summary is order-dependent, so the
/// bit-identical contract is only meaningful against an identically-ordered
/// control.
fn control_with(shards: usize, feed: impl FnOnce(&mut ShardedHiggs)) -> Vec<Weight> {
    let mut control = ShardedHiggs::new(
        HiggsConfig::builder()
            .shards(shards)
            .build()
            .expect("valid control configuration"),
    );
    feed(&mut control);
    control.query_batch(&probes())
}

/// [`control_with`] for the common inserts-then-deletes order.
fn control_answers(shards: usize, inserts: &[StreamEdge], deletes: &[StreamEdge]) -> Vec<Weight> {
    control_with(shards, |control| {
        for e in inserts {
            control.insert(e);
        }
        for e in deletes {
            control.delete(e);
        }
    })
}

/// Builds an elastic durable directory at `shards` holding the workload.
/// Snapshots before closing: an offline reshard takes its configuration from
/// the manifest, so a directory that has never snapshotted folds online only.
fn seed_elastic_dir(dir: &PathBuf, shards: usize, inserts: &[StreamEdge], deletes: &[StreamEdge]) {
    let mut service = Store::open(StoreOptions::durable(elastic_config(shards), dir).elastic(true))
        .expect("elastic durable service");
    for e in inserts {
        service.insert(e);
    }
    for e in deletes {
        service.delete(e);
    }
    service.flush();
    service.snapshot_to_dir(dir).expect("seed snapshot");
}

/// The headline property: every source count folds to every target count
/// bit-identically, including the identity fold (`N -> N`).
#[test]
fn every_shard_count_refolds_bit_identical_to_a_fresh_build() {
    let (inserts, deletes) = workload(1_500);
    let expected: Vec<Vec<Weight>> = (1..=4)
        .map(|m| control_answers(m, &inserts, &deletes))
        .collect();
    for n in 1..=4usize {
        let dir = temp_dir(&format!("prop-{n}"));
        seed_elastic_dir(&dir, n, &inserts, &deletes);
        for m in 1..=4usize {
            let resharded = ShardedHiggs::restore_resharded(&dir, m).expect("reshard");
            assert_eq!(resharded.num_shards(), m);
            assert_eq!(
                resharded.query_batch(&probes()),
                expected[m - 1],
                "{n} -> {m} refold must be bit-identical to a fresh {m}-shard build"
            );
            // The refolded service is live and durable: it keeps accepting
            // mutations, and a plain reopen at the new width recovers them.
            drop(resharded);
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// After a reshard, the directory is a normal elastic directory at the new
/// width: plain `Store::open` recovers it, post-reshard mutations survive a
/// restart, and a *second* reshard folds the full (old + new) history.
#[test]
fn resharded_directory_keeps_accepting_and_refolding() {
    let (inserts, deletes) = workload(900);
    let dir = temp_dir("chain");
    seed_elastic_dir(&dir, 2, &inserts, &deletes);

    let mut resharded = ShardedHiggs::restore_resharded(&dir, 3).expect("2 -> 3");
    let extra: Vec<StreamEdge> = (0..300u64)
        .map(|i| StreamEdge::new((i * 3) % 60, (i * 7) % 60, 2, 1_000 + i))
        .collect();
    for e in &extra {
        resharded.insert(e);
    }
    resharded.flush();
    drop(resharded);

    // The control replays the service's exact order: workload, deletes, then
    // the post-reshard extras.
    let control = |m: usize| {
        control_with(m, |c| {
            for e in &inserts {
                c.insert(e);
            }
            for e in &deletes {
                c.delete(e);
            }
            for e in &extra {
                c.insert(e);
            }
        })
    };

    // Plain reopen at 3 recovers everything.
    let reopened = Store::open(StoreOptions::durable(elastic_config(3), &dir)).expect("reopen");
    assert_eq!(
        reopened.query_batch(&probes()),
        control(3),
        "post-reshard mutations must survive a plain restart"
    );
    drop(reopened);

    // A second fold (3 -> 4) replays the concatenated history generations.
    let refolded = Store::open_resharded(StoreOptions::restore(&dir), 4).expect("3 -> 4");
    assert_eq!(
        refolded.query_batch(&probes()),
        control(4),
        "a second reshard must fold history from every generation"
    );
    drop(refolded);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Online reshard: fence, refold, swap — on a live service, with surviving
/// ingest handles, without dropping an acknowledged mutation.
#[test]
fn online_reshard_preserves_acknowledged_mutations_and_handles() {
    let (inserts, deletes) = workload(1_200);
    let dir = temp_dir("online");
    let mut service = Store::open(StoreOptions::durable(elastic_config(2), &dir).elastic(true))
        .expect("elastic durable service");
    let handle = service.ingest_handle();
    let (before, after) = inserts.split_at(800);
    for e in before {
        handle.insert(e).expect("live ingest");
    }
    for e in &deletes {
        handle.delete(e).expect("live ingest");
    }
    service.flush();

    service.reshard(4).expect("online reshard");
    assert_eq!(service.num_shards(), 4);

    // The pre-swap handle keeps routing — now over 4 writers.
    assert_eq!(handle.num_shards(), 4);
    for e in after {
        handle.insert(e).expect("ingest across the swap");
    }
    service.flush();
    // The control replays the live order: 800 inserts, deletes, reshard
    // boundary (invisible to state), then the last 400 inserts.
    let control = control_with(4, |c| {
        for e in before {
            c.insert(e);
        }
        for e in &deletes {
            c.delete(e);
        }
        for e in after {
            c.insert(e);
        }
    });
    assert_eq!(
        service.query_batch(&probes()),
        control,
        "online 2 -> 4 reshard must match a fresh 4-shard build"
    );

    // The post-reshard directory restarts at the new width.
    drop(service);
    let reborn = Store::open(StoreOptions::durable(elastic_config(4), &dir)).expect("restart");
    assert_eq!(
        reborn.query_batch(&probes()),
        control,
        "the resharded directory must recover at its new width"
    );
    drop(reborn);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A corrupt history file fails the fold with the typed
/// `ReshardError::Corrupt` — before anything is spawned.
#[test]
fn corrupt_history_reports_typed_error_and_spawns_nothing() {
    let (inserts, deletes) = workload(400);
    let dir = temp_dir("corrupt");
    seed_elastic_dir(&dir, 2, &inserts, &deletes);

    // Flip bytes in the interior of shard 0's history records.
    let victim = dir.join("history-000-000.higgs");
    let mut bytes = std::fs::read(&victim).expect("history file exists");
    assert!(bytes.len() > 64, "history must hold records to corrupt");
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 8] {
        *b ^= 0xFF;
    }
    std::fs::write(&victim, &bytes).expect("rewrite history");

    let census = live_writer_threads();
    let err = ShardedHiggs::restore_resharded(&dir, 3).expect_err("corrupt fold must fail");
    assert!(
        matches!(err, ReshardError::Corrupt { .. } | ReshardError::Journal(_)),
        "expected Corrupt (or an I/O-level Journal error), got: {err}"
    );
    assert_eq!(
        live_writer_threads(),
        census,
        "a failed reshard must not leak writer threads"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The non-fold failure paths are typed too: invalid counts, directories
/// with no history, and elastic misconfiguration at open time.
#[test]
fn reshard_failure_paths_are_typed() {
    let (inserts, deletes) = workload(200);

    // Invalid target counts, checked before any file is touched.
    let dir = temp_dir("typed");
    seed_elastic_dir(&dir, 2, &inserts, &deletes);
    for bad in [0usize, higgs::shard::MAX_SHARDS + 1] {
        assert!(
            matches!(
                ShardedHiggs::restore_resharded(&dir, bad),
                Err(ReshardError::InvalidShardCount { requested }) if requested == bad
            ),
            "count {bad} must be rejected"
        );
    }

    // A live non-elastic service refuses an online reshard.
    let plain_dir = temp_dir("typed-plain");
    let mut plain = Store::open(StoreOptions::durable(elastic_config(2), &plain_dir))
        .expect("durable, non-elastic");
    plain.insert(&StreamEdge::new(1, 2, 5, 10));
    plain.flush();
    assert!(
        matches!(
            plain.reshard(3),
            Err(ReshardError::HistoryUnavailable { .. })
        ),
        "a non-elastic service has no history to refold"
    );
    drop(plain);

    // ...and its directory refuses an offline one.
    assert!(matches!(
        ShardedHiggs::restore_resharded(&plain_dir, 3),
        Err(ReshardError::HistoryUnavailable { .. })
    ));
    std::fs::remove_dir_all(&plain_dir).expect("cleanup");
    std::fs::remove_dir_all(&dir).expect("cleanup");

    // Every variant renders a cause a human can act on.
    for (err, needle) in [
        (
            ReshardError::InvalidShardCount { requested: 99 },
            "invalid target shard count",
        ),
        (
            ReshardError::HistoryUnavailable { detail: "x".into() },
            "no elastic history",
        ),
        (ReshardError::Corrupt { detail: "x".into() }, "corrupt"),
        (ReshardError::Degraded { shard: 1 }, "degraded"),
        (
            ReshardError::Snapshot(SnapshotError::Corrupt("x".into())),
            "commit failed",
        ),
    ] {
        let msg = err.to_string();
        assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
    }
    // `ReshardError::Journal` carries its I/O source.
    let io = ShardedHiggs::restore_resharded(temp_dir("typed-missing"), 2)
        .expect_err("missing directory cannot fold");
    assert!(
        matches!(
            &io,
            ReshardError::HistoryUnavailable { .. } | ReshardError::Journal(_)
        ),
        "missing dir must be typed, got: {io}"
    );
}

/// The `Store::open` elastic rules: `AlreadyExists` under `CreateNew`,
/// `ElasticUnavailable` for journal-less or retroactive elastic requests.
#[test]
fn store_open_modes_and_elastic_rules_are_typed() {
    let (inserts, deletes) = workload(150);
    let dir = temp_dir("store-modes");
    seed_elastic_dir(&dir, 2, &inserts, &deletes);

    // CreateNew refuses an initialised directory.
    let err = Store::open(StoreOptions::durable(elastic_config(2), &dir).mode(OpenMode::CreateNew))
        .expect_err("CreateNew over a manifest must fail");
    assert!(
        matches!(err, SnapshotError::AlreadyExists { .. }),
        "expected AlreadyExists, got: {err}"
    );

    // OpenExisting refuses a missing directory.
    let missing = temp_dir("store-missing");
    let err = Store::open(
        StoreOptions::durable(elastic_config(2), &missing).mode(OpenMode::OpenExisting),
    )
    .expect_err("OpenExisting without a directory must fail");
    assert!(matches!(err, SnapshotError::Io(_)));

    // Elastic requires journaling.
    let off = HiggsConfig::builder()
        .shards(2)
        .journal_mode(JournalMode::Off)
        .build()
        .expect("valid configuration");
    let err = Store::open(StoreOptions::durable(off, &missing).elastic(true))
        .expect_err("elastic without journaling must fail");
    assert!(
        matches!(err, SnapshotError::ElasticUnavailable { .. }),
        "expected ElasticUnavailable, got: {err}"
    );

    // Elastic cannot be enabled retroactively on non-elastic state.
    let plain_dir = temp_dir("store-retro");
    {
        let service = Store::open(StoreOptions::durable(elastic_config(1), &plain_dir))
            .expect("plain durable");
        service.snapshot_to_dir(&plain_dir).expect("snapshot");
    }
    let err = Store::open(StoreOptions::durable(elastic_config(1), &plain_dir).elastic(true))
        .expect_err("retroactive elastic must fail");
    assert!(matches!(err, SnapshotError::ElasticUnavailable { .. }));

    // A restore (no config) cannot be elastic either.
    let err = Store::open(StoreOptions::restore(&plain_dir).elastic(true))
        .expect_err("elastic restore must fail");
    assert!(matches!(err, SnapshotError::ElasticUnavailable { .. }));

    // ...but a plain restore and a plain reopen both still work, and the
    // elastic directory auto re-arms without re-passing `.elastic(true)`.
    drop(Store::open(StoreOptions::restore(&plain_dir)).expect("plain restore"));
    drop(Store::open(StoreOptions::durable(elastic_config(2), &dir)).expect("auto re-arm"));
    std::fs::remove_dir_all(&plain_dir).expect("cleanup");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The deprecated constructor quartet still works as thin delegates onto
/// `Store::open`, so pre-PR call sites keep compiling and behaving.
#[test]
#[allow(deprecated)]
fn deprecated_constructors_delegate_to_store_open() {
    let dir = temp_dir("deprecated");
    let mut service =
        ShardedHiggs::new_durable(elastic_config(2), &dir).expect("deprecated durable");
    service.insert(&StreamEdge::new(1, 2, 5, 10));
    service.flush();
    service.snapshot_to_dir(&dir).expect("snapshot");
    drop(service);

    let restored = ShardedHiggs::restore_from_dir(&dir).expect("deprecated restore");
    assert_eq!(
        restored.query(&Query::edge(1, 2, TimeRange::all())),
        5,
        "delegates must behave exactly like Store::open"
    );
    drop(restored);

    let with_workers =
        ShardedHiggs::new_durable_with_workers(elastic_config(2), &dir, 2).expect("durable");
    drop(with_workers);
    let with_workers = ShardedHiggs::restore_from_dir_with_workers(&dir, 2).expect("restore");
    drop(with_workers);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
