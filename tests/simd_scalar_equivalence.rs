//! SIMD / scalar bit-identity: the explicit vector kernels behind the `simd`
//! feature must return *exactly* the answers of the scalar reference on every
//! probe path — full summaries (edge/vertex/path/subgraph queries and
//! batches) and direct `CompressedMatrix` probes — across random
//! insert/delete workloads in the paper-default regime, a collision-heavy
//! regime, and a deliberately tiny matrix whose sweep length is **not** a
//! multiple of the AVX2 lane width (tail-handling coverage).
//!
//! `higgs_common::simd::force_scalar` is a process-global toggle, so the
//! whole comparison lives in a single `#[test]` in its own integration
//! binary: no other test can race the dispatch switch. Without the `simd`
//! feature the toggle is inert and the test degenerates to
//! scalar-vs-scalar — still a valid (if tautological) run, which is why CI
//! executes this binary under both feature configurations.

use higgs::{CompressedMatrix, HiggsConfig, HiggsSummary};
use higgs_common::{Query, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection};

const MAX_T: u64 = 2_000;
const VERTICES: u64 = 48;

/// Deterministic splitmix64 stream — keeps the workload identical across
/// runs and platforms without a `rand` dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Random insert/delete workload: `len` inserts, roughly a third of them
/// deleted again (some twice, driving net weights negative inside the slab —
/// the clamp path must agree between kernels too).
fn apply_workload(summary: &mut dyn TemporalGraphSummary, rng: &mut Rng, len: usize) {
    let mut edges = Vec::with_capacity(len);
    for _ in 0..len {
        let e = StreamEdge::new(
            rng.below(VERTICES),
            rng.below(VERTICES),
            1 + rng.below(4),
            rng.below(MAX_T),
        );
        summary.insert(&e);
        edges.push(e);
    }
    for e in &edges {
        match rng.below(6) {
            0 | 1 => summary.delete(e),
            2 => {
                summary.delete(e);
                summary.delete(e);
            }
            _ => {}
        }
    }
}

/// Every query shape the crate exposes, over a grid of vertices and time
/// windows, answered through both the one-shot and the batched (columnar,
/// prefetching) executors.
fn all_answers(summary: &HiggsSummary) -> Vec<u64> {
    let windows = [
        TimeRange::all(),
        TimeRange::new(0, MAX_T / 3),
        TimeRange::new(MAX_T / 3, MAX_T),
        TimeRange::new(MAX_T / 2, MAX_T / 2 + 100),
    ];
    let mut answers = Vec::new();
    let mut batch = Vec::new();
    for &range in &windows {
        for a in (0..VERTICES).step_by(3) {
            let b = (a * 7 + 5) % VERTICES;
            answers.push(summary.edge_query(a, b, range));
            answers.push(summary.vertex_query(a, VertexDirection::Out, range));
            answers.push(summary.vertex_query(b, VertexDirection::In, range));
            batch.push(Query::edge(a, b, range));
            batch.push(Query::vertex(b, VertexDirection::Out, range));
            batch.push(Query::path(vec![a, b, (a + b) % VERTICES], range));
            batch.push(Query::subgraph(vec![(a, b), (b, a)], range));
        }
    }
    answers.extend(summary.query_batch(&batch));
    answers
}

/// Direct slab probes on a raw `CompressedMatrix`: aggregated inserts,
/// spill-path entries (tiny bucket capacity), deletes past zero, then every
/// probe family at every address — the exact loops the SIMD kernels replace.
fn matrix_answers(side: u64, bucket_entries: usize, mapping: u32) -> Vec<u64> {
    let mut m = CompressedMatrix::new(side, 0, bucket_entries, mapping);
    let mut rng = Rng(0xC0FF_EE00 ^ side ^ bucket_entries as u64);
    let universe = side * 4;
    for _ in 0..(side * side * bucket_entries as u64) {
        let (s, d) = (rng.below(universe), rng.below(universe));
        let (fs, fd) = ((rng.next() as u32) & 0xFF, (rng.next() as u32) & 0xFF);
        if rng.below(2) == 0 {
            // Leaf-style entry with a real time offset, so offset-filtered
            // probes have live data on both sides of the bounds.
            let _ = m.try_insert(
                s,
                d,
                fs,
                fd,
                Some(rng.below(32) as u32),
                1 + rng.below(5) as i64,
            );
        } else {
            m.insert_aggregated(s, d, fs, fd, 1 + rng.below(5) as i64);
        }
        if rng.below(4) == 0 {
            // Over-delete sometimes: negative net weights exercise the
            // clamp-at-zero agreement between kernels.
            m.try_delete(s, d, fs, fd, None, 2 + rng.below(6) as i64);
        }
    }
    let mut answers = Vec::new();
    for addr in 0..universe {
        let fp = (addr as u32).wrapping_mul(37) & 0xFF;
        answers.push(m.edge_weight(addr, universe - 1 - addr, fp, fp ^ 0x55, None));
        answers.push(m.src_weight(addr, fp, None));
        answers.push(m.dst_weight(addr, fp, None));
        answers.push(m.src_weight(addr, fp, Some((10, 20))));
    }
    answers
}

#[test]
fn simd_and_scalar_probe_paths_are_bit_identical() {
    let configs: Vec<(&str, HiggsConfig)> = vec![
        ("paper-default", HiggsConfig::paper_default()),
        (
            "collision-heavy",
            HiggsConfig {
                d1: 4,
                f1_bits: 10,
                r_bits: 1,
                bucket_entries: 2,
                mapping_addresses: 2,
                overflow_blocks: true,
                shards: 1,
                plan_cache_capacity: 8,
                ingest_queue_cap: None,
                pin_workers: false,
                admission_tick: std::time::Duration::ZERO,
                service_queue_depth: None,
                journal_mode: higgs::JournalMode::Off,
            },
        ),
        // side 2 × 9 slots: a contiguous row sweep is 18 slots — past
        // SIMD_MIN_LEN (16) yet not a multiple of the 4-wide AVX2 lane, so
        // the kernels' tail handling is on the hook for every answer.
        (
            "non-lane-multiple",
            HiggsConfig {
                d1: 2,
                f1_bits: 8,
                r_bits: 1,
                bucket_entries: 9,
                mapping_addresses: 2,
                overflow_blocks: true,
                shards: 1,
                plan_cache_capacity: 8,
                ingest_queue_cap: None,
                pin_workers: false,
                admission_tick: std::time::Duration::ZERO,
                service_queue_depth: None,
                journal_mode: higgs::JournalMode::Off,
            },
        ),
    ];

    for seed in 0..4u64 {
        for (label, config) in &configs {
            let mut summary = HiggsSummary::new(*config);
            let mut rng = Rng(0xDEAD_BEEF ^ (seed << 32));
            apply_workload(&mut summary, &mut rng, 600);

            // Same immutable summary, both dispatch modes: any difference is
            // the kernels', not the workload's.
            higgs_common::simd::force_scalar(true);
            assert_eq!(higgs_common::simd::kernel_name(), "scalar");
            let scalar = all_answers(&summary);
            higgs_common::simd::force_scalar(false);
            let dispatched = all_answers(&summary);
            assert_eq!(
                scalar,
                dispatched,
                "summary answers diverged between scalar and `{}` kernels \
                 (config {label}, seed {seed})",
                higgs_common::simd::kernel_name()
            );
        }
    }

    // Raw matrix probes, including geometries whose sweeps sit below
    // SIMD_MIN_LEN (always-scalar) and just past it with a ragged tail.
    for (side, bucket_entries, mapping) in [(2, 9, 2), (4, 3, 2), (16, 3, 4), (8, 5, 2)] {
        higgs_common::simd::force_scalar(true);
        let scalar = matrix_answers(side, bucket_entries, mapping);
        higgs_common::simd::force_scalar(false);
        let dispatched = matrix_answers(side, bucket_entries, mapping);
        assert_eq!(
            scalar,
            dispatched,
            "matrix probes diverged between scalar and `{}` kernels \
             (side {side}, bucket_entries {bucket_entries})",
            higgs_common::simd::kernel_name()
        );
    }

    // Leave the process-global dispatch in its default state.
    higgs_common::simd::force_scalar(false);
}
