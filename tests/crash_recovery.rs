//! Deterministic crash-recovery chaos tests, driven by the `fail` failpoint
//! shim. Compiled only under the `failpoints` feature (CI runs
//! `cargo test -p higgs-integration-tests --features failpoints`); a default
//! build contains no fault-injection hooks at all.
//!
//! Every scenario follows the same shape: build a *control* service that
//! never faults, run a workload through a *faulty* service with one armed
//! failpoint (journal append error, snapshot write error, or an apply
//! panic), let supervision recover the writer, and require the faulty
//! service — and a cold restart from its durable directory — to answer
//! **bit-identically** to the control. Failpoints are counted and
//! single-shot, so each run kills the writer at exactly the same point:
//! no timing races, no flaky kills.
//!
//! The failpoint registry and the writer census are process-global, so
//! every test serialises on [`CHAOS_LOCK`] and resets the registry on both
//! sides of its run.

#![cfg(feature = "failpoints")]

use higgs::shard::{live_writer_threads, MAX_WRITER_RESPAWNS};
use higgs::{
    HiggsConfig, HiggsService, JournalMode, ReshardError, ServiceError, ShardHealth, ShardedHiggs,
    SnapshotError, Store, StoreOptions,
};
use higgs_common::{Query, QueryOptions, RetryPolicy, StreamEdge, TemporalGraphSummary, TimeRange};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serialises chaos tests: the failpoint registry and the writer census are
/// both process-wide, and a stray armed failpoint would fire in an
/// unrelated test's writer.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Locks the chaos mutex (surviving a poisoned lock from an earlier failed
/// test) and clears any stale failpoint arming.
fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fail::reset();
    guard
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("higgs-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(shards: usize) -> HiggsConfig {
    HiggsConfig::builder()
        .shards(shards)
        .journal_mode(JournalMode::Buffered)
        .build()
        .expect("valid durable configuration")
}

fn workload(n: u64) -> Vec<StreamEdge> {
    (0..n)
        .map(|i| StreamEdge::new(i % 50, (i * 13) % 50, 1 + i % 4, i))
        .collect()
}

fn probes() -> Vec<Query> {
    (0..25u64)
        .map(|k| Query::edge(k % 50, (k * 13) % 50, TimeRange::all()))
        .collect()
}

/// Reference answers from a service that never faults. Built *before* any
/// failpoint is armed, so the control can never absorb an injected fault.
fn control_answers(shards: usize, edges: &[StreamEdge]) -> Vec<higgs_common::Weight> {
    let mut control = ShardedHiggs::new(
        HiggsConfig::builder()
            .shards(shards)
            .build()
            .expect("valid configuration"),
    );
    for e in edges {
        higgs_common::TemporalGraphSummary::insert(&mut control, e);
    }
    control.query_batch(&probes())
}

/// Polls until every shard reports `Healthy` (recovery finished) or the
/// deadline passes.
fn await_all_healthy(service: &ShardedHiggs) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if service
            .shard_health()
            .iter()
            .all(|h| *h == ShardHealth::Healthy)
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "shards still degraded after 10s: {:?}",
            service.shard_health()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Polls until the writer census settles at `expected` (the dying writer's
/// counter guard drops shortly after its replacement is registered).
fn await_census(expected: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while live_writer_threads() != expected {
        assert!(
            Instant::now() < deadline,
            "writer census stuck at {} (expected {expected})",
            live_writer_threads()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// An apply panic kills the writer mid-command; the record was journaled
/// first, so the respawned writer rebuilds the shard and replays it —
/// the faulty service, and a cold restart from its directory, answer
/// bit-identically to a never-crashed control at every shard count.
#[test]
fn apply_panic_recovers_bit_identical_to_control() {
    let _guard = chaos_guard();
    let edges = workload(600);
    for shards in [1usize, 2, 4] {
        let expected = control_answers(shards, &edges);
        let dir = temp_dir(&format!("apply-panic-{shards}"));

        let service = Store::open(StoreOptions::durable(durable_config(shards), &dir))
            .expect("durable service");
        let handle = service.ingest_handle();
        fail::configure("shard::apply", 3, fail::Action::Panic);
        for e in &edges {
            handle.insert(e).expect("live ingest");
        }
        service.flush();
        assert!(
            fail::hits("shard::apply") >= 3,
            "the instrumented apply path was never reached"
        );
        await_all_healthy(&service);
        await_census(shards);
        assert_eq!(
            service.query_batch(&probes()),
            expected,
            "{shards}-shard recovery after an apply panic must be bit-identical"
        );

        // Cold restart from the same directory: the journal alone (no
        // snapshot was ever taken) rebuilds the identical state.
        drop(service);
        assert_eq!(live_writer_threads(), 0, "drop joins respawned writers");
        let reborn =
            Store::open(StoreOptions::durable(durable_config(shards), &dir)).expect("cold restart");
        assert_eq!(
            reborn.query_batch(&probes()),
            expected,
            "{shards}-shard restart"
        );
        drop(reborn);
        std::fs::remove_dir_all(&dir).expect("cleanup");
        fail::reset();
    }
}

/// A journal append failure degrades the writer *before* the command was
/// journaled or applied; the command is carried over to the replacement
/// writer, so no acknowledged mutation is lost.
#[test]
fn journal_append_failure_loses_no_acknowledged_mutation() {
    let _guard = chaos_guard();
    let edges = workload(400);
    for shards in [1usize, 2, 4] {
        let expected = control_answers(shards, &edges);
        let dir = temp_dir(&format!("append-fail-{shards}"));

        let service = Store::open(StoreOptions::durable(durable_config(shards), &dir))
            .expect("durable service");
        let handle = service.ingest_handle();
        fail::configure(
            "journal::append",
            5,
            fail::Action::Error("injected disk fault".into()),
        );
        for e in &edges {
            handle.insert(e).expect("live ingest");
        }
        service.flush();
        assert!(
            fail::hits("journal::append") >= 5,
            "the instrumented append path was never reached"
        );
        await_all_healthy(&service);
        assert_eq!(
            service.query_batch(&probes()),
            expected,
            "{shards}-shard recovery after an append fault must be bit-identical"
        );

        drop(service);
        let reborn =
            Store::open(StoreOptions::durable(durable_config(shards), &dir)).expect("cold restart");
        assert_eq!(
            reborn.query_batch(&probes()),
            expected,
            "{shards}-shard restart"
        );
        drop(reborn);
        std::fs::remove_dir_all(&dir).expect("cleanup");
        fail::reset();
    }
}

/// A failed snapshot must leave the journals untouched (the rotation fence
/// releases with "keep"), keep serving identical results, and a retried
/// snapshot afterwards rotates normally.
#[test]
fn failed_snapshot_keeps_journals_and_state() {
    let _guard = chaos_guard();
    let edges = workload(500);
    for shards in [1usize, 2, 4] {
        let expected = control_answers(shards, &edges);
        let dir = temp_dir(&format!("snap-fail-{shards}"));

        let service = Store::open(StoreOptions::durable(durable_config(shards), &dir))
            .expect("durable service");
        let handle = service.ingest_handle();
        for e in &edges {
            handle.insert(e).expect("live ingest");
        }
        service.flush();
        let journal_len = |s: usize| {
            std::fs::metadata(dir.join(higgs::journal::journal_file_name(s)))
                .expect("journal exists")
                .len()
        };
        let before: Vec<u64> = (0..shards).map(journal_len).collect();
        assert!(
            before.iter().all(|&len| len > 0),
            "buffered journals must hold the workload"
        );

        fail::configure(
            "snapshot::write_shard",
            1,
            fail::Action::Error("injected snapshot fault".into()),
        );
        service
            .snapshot_to_dir(&dir)
            .expect_err("armed snapshot must fail");
        let after: Vec<u64> = (0..shards).map(journal_len).collect();
        assert_eq!(
            before, after,
            "a failed snapshot must not rotate (truncate) any journal"
        );
        assert_eq!(
            service.query_batch(&probes()),
            expected,
            "{shards}-shard service must keep serving after a failed snapshot"
        );

        // The failpoint is single-shot and already spent: the retry rotates.
        service.snapshot_to_dir(&dir).expect("retried snapshot");
        let rotated: Vec<u64> = (0..shards).map(journal_len).collect();
        assert!(
            rotated.iter().zip(&before).all(|(r, b)| r < b),
            "a successful snapshot truncates every journal ({before:?} -> {rotated:?})"
        );

        drop(service);
        let reborn =
            Store::open(StoreOptions::durable(durable_config(shards), &dir)).expect("cold restart");
        assert_eq!(
            reborn.query_batch(&probes()),
            expected,
            "{shards}-shard restart from snapshot + empty journal tail"
        );
        drop(reborn);
        std::fs::remove_dir_all(&dir).expect("cleanup");
        fail::reset();
    }
}

/// A panic in the fence-path flush (the snapshot barrier) must not hang the
/// snapshot holder or poison the shard lock: the writer degrades *before*
/// acking the fence, the post-fence health re-check aborts the snapshot with
/// `DegradedShard` (journals kept — the partial pipeline is never stamped
/// into a manifest), supervision respawns the writer from the journal, and a
/// retried snapshot rotates normally with bit-identical results.
#[test]
fn fence_flush_panic_aborts_snapshot_then_recovers() {
    let _guard = chaos_guard();
    let edges = workload(500);
    for shards in [1usize, 2, 4] {
        let expected = control_answers(shards, &edges);
        let dir = temp_dir(&format!("fence-panic-{shards}"));

        let service = Store::open(StoreOptions::durable(durable_config(shards), &dir))
            .expect("durable service");
        let handle = service.ingest_handle();
        for e in &edges {
            handle.insert(e).expect("live ingest");
        }
        service.flush();

        fail::configure("shard::fence_flush", 1, fail::Action::Panic);
        let err = service
            .snapshot_to_dir(&dir)
            .expect_err("a snapshot over a panicking fence flush must abort");
        assert!(
            matches!(err, SnapshotError::DegradedShard { .. }),
            "expected DegradedShard, got: {err}"
        );
        assert!(
            fail::hits("shard::fence_flush") >= 1,
            "the instrumented fence flush was never reached"
        );

        // Supervision recovers the writer from the (untouched) journal.
        await_all_healthy(&service);
        await_census(shards);
        assert_eq!(
            service.query_batch(&probes()),
            expected,
            "{shards}-shard recovery after a fence-flush panic must be bit-identical"
        );

        // The failpoint is single-shot and spent: the retry rotates.
        service.snapshot_to_dir(&dir).expect("retried snapshot");
        assert_eq!(service.query_batch(&probes()), expected);

        drop(service);
        let reborn =
            Store::open(StoreOptions::durable(durable_config(shards), &dir)).expect("cold restart");
        assert_eq!(
            reborn.query_batch(&probes()),
            expected,
            "{shards}-shard restart after an aborted-then-retried snapshot"
        );
        drop(reborn);
        std::fs::remove_dir_all(&dir).expect("cleanup");
        fail::reset();
    }
}

/// A fault that recurs on every writer generation must not respawn forever:
/// after [`MAX_WRITER_RESPAWNS`] failures the shard parks in degraded drain
/// permanently, the recorded recovery error names the exhausted budget,
/// snapshots refuse the shard, and flush stays non-blocking.
#[test]
fn persistent_fault_exhausts_the_respawn_budget_and_parks_the_shard() {
    let _guard = chaos_guard();
    let dir = temp_dir("respawn-budget");
    let service =
        Store::open(StoreOptions::durable(durable_config(1), &dir)).expect("durable service");
    let handle = service.ingest_handle();
    handle.insert(&StreamEdge::new(1, 2, 5, 1)).expect("live");
    service.flush();

    // One failure per round. The first MAX_WRITER_RESPAWNS rounds recover
    // (the single-shot failpoint is spent by the time the replacement
    // re-drives the carried-over command); the final round finds the budget
    // exhausted and parks the shard.
    for round in 0..=MAX_WRITER_RESPAWNS {
        fail::configure(
            "journal::append",
            1,
            fail::Action::Error("persistent disk fault".into()),
        );
        handle
            .insert(&StreamEdge::new(2, 3, 1, u64::from(round) + 2))
            .expect("queued");
        service.flush();
        if round < MAX_WRITER_RESPAWNS {
            await_all_healthy(&service);
        }
    }
    assert_eq!(
        service.shard_health(),
        vec![ShardHealth::Degraded],
        "an exhausted respawn budget must park the shard permanently"
    );
    assert_eq!(
        service.shard_respawn_counts(),
        vec![MAX_WRITER_RESPAWNS + 1],
        "every failure must be counted against the budget"
    );
    let reasons = service.shard_recovery_errors();
    assert!(
        reasons[0]
            .as_deref()
            .is_some_and(|r| r.contains("respawn budget exhausted")),
        "the parked shard must record why: {reasons:?}"
    );
    assert!(
        matches!(
            service.snapshot_to_dir(&dir),
            Err(SnapshotError::DegradedShard { shard: 0 })
        ),
        "a parked shard must refuse to snapshot"
    );
    // The drain keeps acknowledging flushes: nothing blocks on the shard.
    service.flush();
    drop(service);
    assert_eq!(live_writer_threads(), 0, "drop joins the parked drain");
    std::fs::remove_dir_all(&dir).expect("cleanup");
    fail::reset();
}

/// Without a durable record there is nothing to recover from: the shard
/// stays degraded, queries routed at it fail fast with the typed
/// `ShardUnavailable` error (never a hang), ingest and flush stay
/// non-blocking, and retry policies exhaust cleanly.
#[test]
fn degraded_shard_without_recovery_fails_queries_fast() {
    let _guard = chaos_guard();
    let service = HiggsService::new(
        HiggsConfig::builder()
            .shards(1)
            .build()
            .expect("valid configuration"),
    );
    let client = service.client();
    client.insert(&StreamEdge::new(1, 2, 5, 10)).expect("live");
    assert_eq!(client.query(&Query::edge(1, 2, TimeRange::all())), Ok(5));

    // Kill the only writer; journaling is off, so recovery is impossible.
    fail::configure("shard::apply", 1, fail::Action::Panic);
    client
        .insert(&StreamEdge::new(3, 4, 7, 11))
        .expect("queued");
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.summary().shard_health() != vec![ShardHealth::Degraded] {
        assert!(Instant::now() < deadline, "shard never degraded");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Tickets resolve with the typed error instead of hanging on the dead
    // writer's flush.
    let ticket = client.submit(Query::edge(1, 2, TimeRange::all()));
    assert_eq!(ticket.wait(), Err(ServiceError::ShardUnavailable));
    // Batches fail atomically with the same error.
    assert_eq!(
        client.query_batch(&[Query::edge(1, 2, TimeRange::all())]),
        Err(ServiceError::ShardUnavailable)
    );
    // A retry policy burns its bounded backoff schedule, then surfaces the
    // same transient error — bounded time, no hang.
    let opts =
        QueryOptions::new().retry(RetryPolicy::retries(2).base_backoff(Duration::from_millis(1)));
    assert_eq!(
        client.query_with(&Query::edge(1, 2, TimeRange::all()), opts),
        Err(ServiceError::ShardUnavailable)
    );
    // Ingest surfaces stay non-blocking while degraded.
    client
        .insert(&StreamEdge::new(5, 6, 1, 12))
        .expect("queued");
    client.flush();
    fail::reset();
}

/// A fault in the reshard's snapshot commit is **pre-commit**: the fence
/// releases, the service keeps its old width, ingest handles keep working,
/// and a disarmed retry completes the swap — after which a cold restart
/// recovers at the new width.
#[test]
fn reshard_commit_fault_aborts_pre_commit_and_retries_cleanly() {
    let _guard = chaos_guard();
    let edges = workload(500);
    let extra = StreamEdge::new(7, 8, 2, 9_000);
    let expected_old = control_answers(2, &edges);
    let expected_new = {
        let mut all = edges.clone();
        all.push(extra);
        control_answers(4, &all)
    };
    let dir = temp_dir("reshard-fault");

    let mut service = Store::open(StoreOptions::durable(durable_config(2), &dir).elastic(true))
        .expect("elastic durable service");
    let handle = service.ingest_handle();
    for e in &edges {
        handle.insert(e).expect("live ingest");
    }
    service.flush();

    fail::configure(
        "snapshot::write_shard",
        1,
        fail::Action::Error("injected reshard commit fault".into()),
    );
    let err = service
        .reshard(4)
        .expect_err("armed reshard commit must fail");
    assert!(
        matches!(err, ReshardError::Snapshot(_)),
        "expected Snapshot, got: {err}"
    );
    assert!(
        fail::hits("snapshot::write_shard") >= 1,
        "the instrumented snapshot commit was never reached"
    );
    // Pre-commit abort: old width, old answers, live handles.
    assert_eq!(service.num_shards(), 2);
    assert_eq!(live_writer_threads(), 2, "the old fleet must survive");
    assert_eq!(
        service.query_batch(&probes()),
        expected_old,
        "an aborted reshard must keep serving the old layout bit-identically"
    );
    handle.insert(&extra).expect("post-abort ingest");
    service.flush();

    // The failpoint is single-shot and spent: the retry swaps the fleet.
    service.reshard(4).expect("retried reshard");
    assert_eq!(service.num_shards(), 4);
    assert_eq!(live_writer_threads(), 4, "the swap joins the old fleet");
    assert_eq!(
        service.query_batch(&probes()),
        expected_new,
        "the retried reshard must fold the full history, post-abort ingest included"
    );

    drop(service);
    let reborn = Store::open(StoreOptions::durable(durable_config(4), &dir)).expect("cold restart");
    assert_eq!(
        reborn.query_batch(&probes()),
        expected_new,
        "restart at the new width after an aborted-then-retried reshard"
    );
    drop(reborn);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    fail::reset();
}

/// Kill the leader's writer mid-ingest while a follower is shipping its
/// journals: every record is journaled **before** it is applied, so the
/// journal stays the complete acknowledged stream across the crash and the
/// recovery — the follower syncs to bit-identical state and a promotion
/// after the leader dies loses nothing.
#[test]
fn follower_ships_across_a_leader_writer_crash_and_promotes_complete() {
    let _guard = chaos_guard();
    let edges = workload(600);
    let expected = control_answers(2, &edges);
    let dir = temp_dir("ship-crash");

    let leader =
        Store::open(StoreOptions::durable(durable_config(2), &dir)).expect("durable leader");
    // Stamp the bootstrap snapshot (empty state) before any ingest.
    leader.snapshot_to_dir(&dir).expect("bootstrap snapshot");
    let mut follower = Store::follow(StoreOptions::restore(&dir)).expect("bootstrap");

    let handle = leader.ingest_handle();
    let (first, second) = edges.split_at(300);
    for e in first {
        handle.insert(e).expect("live ingest");
    }
    leader.flush();
    follower.sync().expect("mid-ingest ship");

    // The writer dies mid-stream; supervision replays the journal, whose
    // acknowledged prefix the follower keeps shipping from unchanged (a
    // recovery trims only torn, never-acknowledged tail bytes).
    fail::configure("shard::apply", 3, fail::Action::Panic);
    for e in second {
        handle.insert(e).expect("ingest across the crash");
    }
    leader.flush();
    assert!(
        fail::hits("shard::apply") >= 3,
        "the instrumented apply path was never reached"
    );
    await_all_healthy(&leader);
    assert_eq!(
        leader.query_batch(&probes()),
        expected,
        "the leader itself must recover bit-identically"
    );

    // The leader process dies after acknowledging everything.
    drop(leader);
    assert_eq!(live_writer_threads(), 0, "drop joins the recovered fleet");

    let progress = follower.sync().expect("final ship");
    assert!(
        progress.records_applied > 0,
        "the post-crash tail must ship records"
    );
    assert_eq!(
        follower.query_batch(&probes()),
        expected,
        "a follower shipping across the crash must reach the acked state"
    );
    let mut promoted = follower.promote().expect("promote");
    assert_eq!(
        promoted.query_batch(&probes()),
        expected,
        "the promoted follower must serve the complete acknowledged history"
    );
    // The promoted service is a live leader again.
    promoted.insert(&StreamEdge::new(1, 2, 3, 50_000));
    promoted.flush();
    drop(promoted);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    fail::reset();
}
