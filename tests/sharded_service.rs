//! Cross-crate tests of the sharded service layer: a property test that
//! `ShardedHiggs` at 1/2/4 shards is bit-identical to a single
//! `HiggsSummary` on random insert/delete/query-batch workloads (the
//! collision-free regime — sharding must never change answers), one-sided
//! error against the exact store under a deliberately collision-heavy
//! configuration, and a multi-threaded stress test serving read-only batches
//! from four threads while an `IngestHandle` streams edges in.

use higgs::{HiggsConfig, HiggsSummary, ShardedHiggs};
use higgs_common::{
    ExactTemporalGraph, Query, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection,
};
use proptest::prelude::*;

const MAX_T: u64 = 2_000;

fn edge_strategy() -> impl Strategy<Value = StreamEdge> {
    (0u64..40, 0u64..40, 1u64..5, 0u64..MAX_T).prop_map(|(s, d, w, t)| StreamEdge::new(s, d, w, t))
}

fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<StreamEdge>> {
    prop::collection::vec(edge_strategy(), 1..max_len).prop_map(|mut edges| {
        edges.sort_by_key(|e| e.timestamp);
        edges
    })
}

/// Random typed queries of all four kinds over the 40-vertex universe,
/// drawn from a small set of windows so batches genuinely share plans.
fn mixed_query_strategy() -> impl Strategy<Value = Query> {
    (0u8..4, 0u64..40, 0u64..40, 0u64..40, 0u64..8).prop_map(|(kind, a, b, c, window)| {
        let start = window * (MAX_T / 8);
        let range = TimeRange::new(start, start + MAX_T / 4);
        match kind {
            0 => Query::edge(a, b, range),
            1 => Query::vertex(
                a,
                if b % 2 == 0 {
                    VertexDirection::Out
                } else {
                    VertexDirection::In
                },
                range,
            ),
            2 => Query::path(vec![a, b, c, (a + b) % 40, (b + c) % 40], range),
            _ => Query::subgraph(vec![(a, b), (b, c), (c, a), (a, c)], range),
        }
    })
}

fn collision_heavy_config(shards: usize) -> HiggsConfig {
    HiggsConfig {
        d1: 4,
        f1_bits: 10,
        r_bits: 1,
        bucket_entries: 2,
        mapping_addresses: 2,
        overflow_blocks: true,
        shards,
        plan_cache_capacity: 8,
        ingest_queue_cap: None,
        pin_workers: false,
        admission_tick: std::time::Duration::ZERO,
        service_queue_depth: None,
        journal_mode: higgs::JournalMode::Off,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_is_bit_identical_to_single_summary(
        edges in stream_strategy(250),
        delete_mask in prop::collection::vec(0u8..4, 1..64),
        queries in prop::collection::vec(mixed_query_strategy(), 1..40),
    ) {
        // Paper-default parameters over a 40-vertex universe are
        // (essentially) collision-free, so every shard layout must agree
        // bit-for-bit with the unsharded summary through interleaved inserts
        // and deletes, on the batch surface and the per-query loop alike.
        let mut single = HiggsSummary::new(HiggsConfig::paper_default());
        for e in &edges {
            single.insert(e);
        }
        for (e, m) in edges.iter().zip(delete_mask.iter().cycle()) {
            if *m == 0 {
                single.delete(e);
            }
        }
        let single_results = single.query_batch(&queries);

        for shards in [1usize, 2, 4] {
            let config = HiggsConfig::builder()
                .shards(shards)
                .build()
                .expect("valid shard count");
            let mut sharded = ShardedHiggs::new(config);
            sharded.insert_all(&edges);
            for (e, m) in edges.iter().zip(delete_mask.iter().cycle()) {
                if *m == 0 {
                    sharded.delete(e);
                }
            }
            let batched = sharded.query_batch(&queries);
            prop_assert_eq!(
                &batched, &single_results,
                "{} shards diverged from the single summary", shards
            );
            let looped: Vec<u64> = queries.iter().map(|q| sharded.query(q)).collect();
            prop_assert_eq!(&batched, &looped, "{} shards: batch != loop", shards);
            prop_assert_eq!(sharded.total_items(), single.total_items());
        }
    }

    #[test]
    fn sharded_estimates_are_one_sided_under_collisions(
        edges in stream_strategy(200),
        queries in prop::collection::vec(mixed_query_strategy(), 1..32),
    ) {
        // Under an under-sized configuration the per-shard estimates may
        // exceed the truth but must never fall below it: each shard is
        // one-sided on its share of the stream, and gathered results are
        // sums of one-sided parts.
        let mut exact = ExactTemporalGraph::new();
        for e in &edges {
            exact.insert(e);
        }
        let truths = exact.query_batch(&queries);
        for shards in [2usize, 4] {
            let mut sharded = ShardedHiggs::new(collision_heavy_config(shards));
            sharded.insert_all(&edges);
            let estimates = sharded.query_batch(&queries);
            for (qi, (est, truth)) in estimates.iter().zip(&truths).enumerate() {
                prop_assert!(
                    est >= truth,
                    "{} shards underestimated query {} ({} < {})",
                    shards, qi, est, truth
                );
            }
        }
    }
}

#[test]
fn serving_threads_observe_bounded_results_during_ingest() {
    // Four reader threads fire read-only batches while an ingest thread
    // streams the second half of the stream through an IngestHandle. Shards
    // progress independently (only per-shard prefix order is guaranteed),
    // but HIGGS counters only ever grow on insert, so every served estimate
    // must lie between the after-first-half result and the final result;
    // afterwards the service must agree with a sequentially built single
    // summary.
    let edges: Vec<StreamEdge> = (0..6_000u64)
        .map(|i| StreamEdge::new(i % 120, (i * 17) % 120, 1 + i % 3, i / 2))
        .collect();
    let (first_half, second_half) = edges.split_at(edges.len() / 2);

    let queries: Vec<Query> = (0..24u64)
        .map(|k| {
            let range = TimeRange::new(25 * k, 1_200 + 50 * k);
            match k % 4 {
                0 => Query::edge(k, (k * 17) % 120, range),
                1 => Query::vertex(k, VertexDirection::Out, range),
                2 => Query::vertex(k, VertexDirection::In, range),
                _ => Query::path(vec![k, (k * 17) % 120, (k * 289) % 120], range),
            }
        })
        .collect();

    let config = HiggsConfig::builder().shards(4).build().expect("valid");
    let mut sharded = ShardedHiggs::new(config);
    sharded.insert_all(first_half);
    let lower_bounds = sharded.query_batch(&queries);

    let handle = sharded.ingest_handle();
    let service = &sharded;
    let queries_ref = &queries;
    let served: Vec<Vec<Vec<u64>>> = std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            for chunk in second_half.chunks(64) {
                for e in chunk {
                    assert!(
                        handle.insert(e).is_ok(),
                        "service must accept mid-stream inserts"
                    );
                }
            }
        });
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    (0..8)
                        .map(|_| service.query_batch(queries_ref))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let served = readers
            .into_iter()
            .map(|r| r.join().expect("reader thread panicked"))
            .collect();
        producer.join().expect("producer thread panicked");
        served
    });

    sharded.flush();
    let final_results = sharded.query_batch(&queries);
    for (reader, batches) in served.iter().enumerate() {
        for results in batches {
            for (qi, value) in results.iter().enumerate() {
                assert!(
                    *value >= lower_bounds[qi] && *value <= final_results[qi],
                    "reader {reader} query {qi}: {value} outside \
                     [{}, {}] — mid-ingest estimates must be bounded",
                    lower_bounds[qi],
                    final_results[qi]
                );
            }
        }
    }

    // The final state must match a sequentially built single summary.
    let mut single = HiggsSummary::new(HiggsConfig::paper_default());
    single.insert_all(&edges);
    assert_eq!(final_results, single.query_batch(&queries));
    assert_eq!(sharded.total_items(), single.total_items());
}

#[test]
fn sharded_drives_the_query_workload_surface_unchanged() {
    // The whole bench/experiment harness talks TemporalGraphSummary +
    // QueryWorkload; the sharded service must slot in unchanged.
    use higgs_common::QueryWorkload;
    let edges: Vec<StreamEdge> = (0..3_000u64)
        .map(|i| StreamEdge::new(i % 80, (i * 7) % 80, 1, i))
        .collect();
    let mut workload = QueryWorkload::default();
    for k in 0..10u64 {
        workload.edge_queries.push(higgs_common::EdgeQuery::new(
            k,
            (k * 7) % 80,
            TimeRange::new(100 * k, 2_000),
        ));
        workload.vertex_queries.push(higgs_common::VertexQuery::new(
            k,
            if k % 2 == 0 {
                VertexDirection::Out
            } else {
                VertexDirection::In
            },
            TimeRange::new(0, 1_500 + k),
        ));
    }
    workload.path_queries.push(higgs_common::PathQuery::new(
        vec![1, 7, 49],
        TimeRange::all(),
    ));
    workload
        .subgraph_queries
        .push(higgs_common::SubgraphQuery::new(
            vec![(2, 14), (3, 21)],
            TimeRange::all(),
        ));

    let mut single = HiggsSummary::new(HiggsConfig::paper_default());
    single.insert_all(&edges);
    let mut sharded = ShardedHiggs::new(HiggsConfig::builder().shards(3).build().expect("valid"));
    sharded.insert_all(&edges);

    let batch = workload.to_batch();
    assert_eq!(
        sharded.query_batch(batch.queries()),
        single.query_batch(batch.queries())
    );
}
