//! Plan-sharing contract of the unified query API: the HIGGS batch executor
//! must build **at most** one Algorithm-3 query plan per *distinct* time
//! range in a batch (asserted through the `plans_built` hook) — and, through
//! the cross-batch plan cache, **zero** plans for ranges whose cached plan is
//! still fresh. Composite queries must share one plan across their
//! hops/edges, and neither batching nor caching may ever change results.

use higgs::{HiggsConfig, HiggsSummary};
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::{
    PathQuery, Query, QueryBatch, SubgraphQuery, SummaryExt, TemporalGraphSummary, TimeRange,
    VertexDirection,
};

fn loaded_summary_with_cache(plan_cache_capacity: usize) -> HiggsSummary {
    let config = HiggsConfig::builder()
        .d1(4)
        .f1_bits(12)
        .bucket_entries(2)
        .mapping_addresses(2)
        .plan_cache_capacity(plan_cache_capacity)
        .build()
        .expect("valid test configuration");
    let mut s = HiggsSummary::new(config);
    for i in 0..6_000u64 {
        s.insert_edge(&higgs_common::StreamEdge::new(i % 120, (i * 7) % 120, 1, i));
    }
    s
}

fn loaded_summary() -> HiggsSummary {
    loaded_summary_with_cache(64)
}

#[test]
fn batched_queries_build_one_plan_per_distinct_range() {
    let s = loaded_summary();
    let windows = [
        TimeRange::new(0, 1_000),
        TimeRange::new(1_500, 3_000),
        TimeRange::new(2_000, 5_999),
    ];
    // 30 mixed queries, 10 per window, in interleaved submission order.
    let mut batch = QueryBatch::new();
    for k in 0..10u64 {
        for (w, &range) in windows.iter().enumerate() {
            match (k as usize + w) % 4 {
                0 => batch.push(Query::edge(k, (k * 7) % 120, range)),
                1 => batch.push(Query::vertex(k, VertexDirection::In, range)),
                2 => batch.push(Query::path(vec![k, k * 7 % 120, k * 49 % 120], range)),
                _ => batch.push(Query::subgraph(
                    vec![(k, k * 7 % 120), (k + 1, (k + 1) * 7 % 120)],
                    range,
                )),
            }
        }
    }
    assert_eq!(batch.len(), 30);
    assert_eq!(batch.distinct_ranges(), windows.len());

    s.reset_plan_count();
    let batched = s.query_batch(batch.queries());
    assert_eq!(
        s.plans_built(),
        windows.len() as u64,
        "cold batch executor must plan once per distinct range"
    );

    // Per-query typed loop: the batch warmed the cross-batch plan cache, so
    // not a single further boundary search runs — with identical results.
    s.reset_plan_count();
    let looped: Vec<u64> = batch.iter().map(|q| s.query(q)).collect();
    assert_eq!(s.plans_built(), 0, "warm typed queries must not re-plan");
    assert_eq!(batched, looped, "plan sharing must not change results");

    // With the cache disabled, the typed per-query loop pays one boundary
    // search per query — the pre-cache reference behaviour.
    let uncached = loaded_summary_with_cache(0);
    uncached.reset_plan_count();
    let fresh: Vec<u64> = batch.iter().map(|q| uncached.query(q)).collect();
    assert_eq!(uncached.plans_built(), batch.len() as u64);
    assert_eq!(batched, fresh, "caching must not change results");
}

#[test]
fn path_query_shares_one_plan_across_hops() {
    let s = loaded_summary();
    let range = TimeRange::new(500, 5_000);
    let path = PathQuery::new((0..11u64).map(|i| (i * 13) % 120).collect(), range);
    assert_eq!(path.hops(), 10);

    // Typed surface: a 10-hop path costs ONE boundary search.
    s.reset_plan_count();
    let typed = s.query(&Query::Path(path.clone()));
    assert_eq!(s.plans_built(), 1);

    // Legacy per-hop composition: ten boundary searches, same result.
    s.reset_plan_count();
    let legacy = s.path_query(&path);
    assert_eq!(s.plans_built(), 10);
    assert_eq!(typed, legacy);
}

#[test]
fn subgraph_query_shares_one_plan_across_edges() {
    let s = loaded_summary();
    let range = TimeRange::new(100, 4_800);
    let edges: Vec<(u64, u64)> = (0..25u64).map(|i| (i % 120, (i * 7) % 120)).collect();
    let sub = SubgraphQuery::new(edges, range);

    s.reset_plan_count();
    let typed = s.query(&Query::Subgraph(sub.clone()));
    assert_eq!(s.plans_built(), 1, "25-edge subgraph must plan once");

    s.reset_plan_count();
    let legacy = s.subgraph_query(&sub);
    assert_eq!(s.plans_built(), 25);
    assert_eq!(typed, legacy);
}

#[test]
fn realistic_mixed_workload_batches_identically_on_real_streams() {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    summary.insert_all(stream.edges());
    let mut builder = WorkloadBuilder::new(&stream, 21);
    let workload = builder.mixed_workload(30, 15, 6, 3, 10_000);
    let batch = workload.to_batch();

    // First submission is cold: exactly one plan per distinct range.
    summary.reset_plan_count();
    let batched = summary.query_batch(batch.queries());
    assert_eq!(summary.plans_built() as usize, batch.distinct_ranges());

    // Identical results through the (now cache-warm) per-query typed path.
    let looped: Vec<u64> = batch.iter().map(|q| summary.query(q)).collect();
    assert_eq!(batched, looped);

    // Re-submitting the whole workload — the sliding-window serving pattern —
    // runs zero boundary searches and returns identical results.
    summary.reset_plan_count();
    assert_eq!(summary.query_batch(batch.queries()), batched);
    assert_eq!(summary.plans_built(), 0, "warm re-submission must not plan");
    assert!(summary.plan_cache_hits() > 0);
}

#[test]
fn empty_batch_builds_no_plan() {
    let s = loaded_summary();
    s.reset_plan_count();
    assert!(s.query_batch(&[]).is_empty());
    assert_eq!(s.plans_built(), 0);
}
