//! Accuracy contract tests: HIGGS versus the exact ground truth.
//!
//! The paper's headline claim is near-lossless accuracy (AAE ≈ 0 on Lkml,
//! Section VI-B) plus a strict one-sided error guarantee (Section V-D). These
//! tests check both on generated streams at the paper's default parameters.

use higgs::{HiggsConfig, HiggsSummary};
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::{ErrorStats, ExactTemporalGraph, TemporalGraphSummary};

fn build_pair(
    preset: DatasetPreset,
) -> (HiggsSummary, ExactTemporalGraph, higgs_common::GraphStream) {
    let stream = preset.generate(ExperimentScale::Smoke);
    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    summary.insert_all(stream.edges());
    let exact = ExactTemporalGraph::from_edges(stream.edges());
    (summary, exact, stream)
}

#[test]
fn edge_query_error_is_tiny_at_paper_parameters() {
    let (summary, exact, stream) = build_pair(DatasetPreset::Lkml);
    let mut builder = WorkloadBuilder::new(&stream, 11);
    let mut stats = ErrorStats::new();
    for lq in [100u64, 10_000, 1_000_000] {
        for q in builder.edge_queries(200, lq) {
            stats.record(
                exact.edge_query(q.src, q.dst, q.range),
                summary.edge_query(q.src, q.dst, q.range),
            );
        }
    }
    assert!(stats.is_one_sided(), "HIGGS must never underestimate");
    assert!(
        stats.aae() < 0.05,
        "edge-query AAE should be near zero at paper parameters, got {}",
        stats.aae()
    );
}

#[test]
fn vertex_query_error_is_small_and_one_sided() {
    let (summary, exact, stream) = build_pair(DatasetPreset::WikiTalk);
    let mut builder = WorkloadBuilder::new(&stream, 12);
    let mut stats = ErrorStats::new();
    for q in builder.vertex_queries(200, 50_000) {
        stats.record(
            exact.vertex_query(q.vertex, q.direction, q.range),
            summary.vertex_query(q.vertex, q.direction, q.range),
        );
    }
    assert!(stats.is_one_sided());
    assert!(
        stats.are() < 0.05,
        "vertex-query ARE should be small, got {}",
        stats.are()
    );
}

#[test]
fn accuracy_holds_across_every_range_length_decade() {
    let (summary, exact, stream) = build_pair(DatasetPreset::Stackoverflow);
    let mut builder = WorkloadBuilder::new(&stream, 13);
    for exp in 1..=6u32 {
        let lq = 10u64.pow(exp);
        let mut stats = ErrorStats::new();
        for q in builder.edge_queries(100, lq) {
            stats.record(
                exact.edge_query(q.src, q.dst, q.range),
                summary.edge_query(q.src, q.dst, q.range),
            );
        }
        assert!(stats.is_one_sided(), "underestimate at Lq=1e{exp}");
        assert!(
            stats.aae() < 0.5,
            "AAE too large at Lq=1e{exp}: {}",
            stats.aae()
        );
    }
}
