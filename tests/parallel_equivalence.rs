//! The parallel insertion pipeline must produce query results identical to
//! the sequential summary on the same stream (Section IV-C guarantees
//! element-level order preservation is sufficient).

use higgs::{HiggsConfig, HiggsSummary, ParallelHiggs};
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::{SummaryExt, TemporalGraphSummary};

#[test]
fn parallel_and_sequential_agree_on_a_real_workload() {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let mut sequential = HiggsSummary::new(HiggsConfig::paper_default());
    let mut parallel = ParallelHiggs::new(HiggsConfig::paper_default(), 3);
    sequential.insert_all(stream.edges());
    parallel.insert_all(stream.edges());
    parallel.flush();

    let mut builder = WorkloadBuilder::new(&stream, 31);
    let workload = builder.mixed_workload(100, 40, 10, 3, 20_000);
    for q in &workload.edge_queries {
        assert_eq!(sequential.run_edge_query(q), parallel.run_edge_query(q));
    }
    for q in &workload.vertex_queries {
        assert_eq!(sequential.run_vertex_query(q), parallel.run_vertex_query(q));
    }
    for q in &workload.path_queries {
        assert_eq!(sequential.path_query(q), parallel.path_query(q));
    }
    assert_eq!(sequential.leaf_count(), parallel.summary().leaf_count());
    assert_eq!(sequential.height(), parallel.summary().height());
}

#[test]
fn into_summary_is_equivalent_to_flush_then_query() {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let mut parallel = ParallelHiggs::new(HiggsConfig::paper_default(), 2);
    parallel.insert_all(stream.edges());
    let finished = parallel.into_summary();

    let mut sequential = HiggsSummary::new(HiggsConfig::paper_default());
    sequential.insert_all(stream.edges());

    let mut builder = WorkloadBuilder::new(&stream, 32);
    for q in builder.edge_queries(200, 10_000) {
        assert_eq!(finished.run_edge_query(&q), sequential.run_edge_query(&q));
    }
}
