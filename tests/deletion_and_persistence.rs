//! Deletion behaviour across every summary (Fig. 18 exercises deletion
//! throughput; these tests pin down its semantics), plus serde round-trips of
//! the experiment data types used by the harness.

use higgs::{HiggsConfig, HiggsSummary};
use higgs_baselines::{Horae, HoraeConfig, Pgss, PgssConfig};
use higgs_common::generator::{DatasetPreset, ExperimentScale};
use higgs_common::{StreamEdge, TemporalGraphSummary, TimeRange};

#[test]
fn deleting_everything_returns_every_summary_to_zero() {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let summaries: Vec<Box<dyn TemporalGraphSummary>> = vec![
        Box::new(HiggsSummary::new(HiggsConfig::paper_default())),
        Box::new(Horae::new(HoraeConfig::for_stream(stream.len(), slices))),
        Box::new(Pgss::new(PgssConfig::for_stream(stream.len(), slices))),
    ];
    for mut summary in summaries {
        summary.insert_all(stream.edges());
        for e in stream.edges() {
            summary.delete(e);
        }
        // Sample a few edges: aggregated weights must be back to zero.
        for e in stream.edges().iter().step_by(101).take(50) {
            assert_eq!(
                summary.edge_query(e.src, e.dst, TimeRange::all()),
                0,
                "{} left residue after full deletion",
                summary.name()
            );
        }
    }
}

#[test]
fn higgs_partial_deletion_updates_all_layers() {
    let mut summary = HiggsSummary::new(HiggsConfig {
        d1: 4,
        f1_bits: 14,
        r_bits: 1,
        bucket_entries: 2,
        mapping_addresses: 2,
        overflow_blocks: true,
        shards: 1,
        plan_cache_capacity: 8,
        ingest_queue_cap: None,
        pin_workers: false,
        admission_tick: std::time::Duration::ZERO,
        service_queue_depth: None,
        journal_mode: higgs::JournalMode::Off,
    });
    let edges: Vec<StreamEdge> = (0..3_000u64)
        .map(|i| StreamEdge::new(i % 120, (i * 7) % 120, 2, i))
        .collect();
    summary.insert_all(&edges);
    assert!(summary.height() > 2, "need aggregated layers for this test");

    // Delete one edge occurrence and verify both a narrow (leaf-only) range
    // and the full range (which uses aggregated matrices) reflect it.
    let victim = edges[1_234];
    let narrow = TimeRange::new(victim.timestamp, victim.timestamp);
    let before_narrow = summary.edge_query(victim.src, victim.dst, narrow);
    let before_all = summary.edge_query(victim.src, victim.dst, TimeRange::all());
    summary.delete(&victim);
    assert_eq!(
        summary.edge_query(victim.src, victim.dst, narrow),
        before_narrow - victim.weight
    );
    assert_eq!(
        summary.edge_query(victim.src, victim.dst, TimeRange::all()),
        before_all - victim.weight
    );
}

#[test]
fn deletion_throughput_workload_leaves_structures_consistent() {
    // The Fig. 18 harness deletes a 20% prefix of the stream; the remaining
    // 80% must still be queryable and the deleted prefix must read as zero.
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let deleted = stream.len() / 5;
    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    summary.insert_all(stream.edges());
    for e in stream.edges().iter().take(deleted) {
        summary.delete(e);
    }
    // A surviving suffix edge keeps its weight.
    let survivor = &stream.edges()[stream.len() - 1];
    assert!(
        summary.edge_query(
            survivor.src,
            survivor.dst,
            TimeRange::new(survivor.timestamp, survivor.timestamp)
        ) >= survivor.weight
    );
    assert_eq!(summary.total_items(), (stream.len() - deleted) as u64);
}
