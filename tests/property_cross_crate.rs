//! Property-based tests spanning crates: randomised streams and query ranges
//! drive the invariants the paper proves — one-sided error for every summary
//! (Section V-D), exact additivity of disjoint ranges on the exact store,
//! insert/delete inverses, and the flat-slab `CompressedMatrix` semantics
//! (spill-path exactness, offset filters, LCG candidate attribution).

use higgs::{CompressedMatrix, HiggsConfig, HiggsSummary};
use higgs_baselines::{Horae, HoraeConfig, Pgss, PgssConfig};
use higgs_common::{
    ExactTemporalGraph, Query, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection,
};
use proptest::prelude::*;
use std::collections::HashMap;

const MAX_T: u64 = 2_000;

fn edge_strategy() -> impl Strategy<Value = StreamEdge> {
    (0u64..40, 0u64..40, 1u64..5, 0u64..MAX_T).prop_map(|(s, d, w, t)| StreamEdge::new(s, d, w, t))
}

fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<StreamEdge>> {
    prop::collection::vec(edge_strategy(), 1..max_len).prop_map(|mut edges| {
        edges.sort_by_key(|e| e.timestamp);
        edges
    })
}

fn range_strategy() -> impl Strategy<Value = TimeRange> {
    (0u64..MAX_T, 0u64..MAX_T).prop_map(|(a, b)| TimeRange::new(a.min(b), a.max(b)))
}

/// Random typed queries of all four kinds over the 40-vertex universe.
/// Ranges are drawn from a small set of windows so batches genuinely share
/// plans (the case the plan-sharing executor optimises).
fn mixed_query_strategy() -> impl Strategy<Value = Query> {
    (0u8..4, 0u64..40, 0u64..40, 0u64..40, 0u64..8).prop_map(|(kind, a, b, c, window)| {
        let start = window * (MAX_T / 8);
        let range = TimeRange::new(start, start + MAX_T / 4);
        match kind {
            0 => Query::edge(a, b, range),
            1 => Query::vertex(
                a,
                if b % 2 == 0 {
                    VertexDirection::Out
                } else {
                    VertexDirection::In
                },
                range,
            ),
            2 => Query::path(vec![a, b, c, (a + b) % 40, (b + c) % 40], range),
            _ => Query::subgraph(vec![(a, b), (b, c), (c, a), (a, c)], range),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn higgs_never_underestimates_edge_or_vertex_queries(
        edges in stream_strategy(300),
        range in range_strategy(),
    ) {
        let mut summary = HiggsSummary::new(HiggsConfig {
            d1: 4,
            f1_bits: 10,
            r_bits: 1,
            bucket_entries: 2,
            mapping_addresses: 2,
            overflow_blocks: true,
            shards: 1,
            plan_cache_capacity: 8,
            ingest_queue_cap: None,
            pin_workers: false,
            admission_tick: std::time::Duration::ZERO,
            service_queue_depth: None,
        journal_mode: higgs::JournalMode::Off,
        });
        let mut exact = ExactTemporalGraph::new();
        for e in &edges {
            summary.insert(e);
            exact.insert(e);
        }
        for v in 0u64..40 {
            for d in [VertexDirection::Out, VertexDirection::In] {
                prop_assert!(summary.vertex_query(v, d, range) >= exact.vertex_query(v, d, range));
            }
        }
        for e in edges.iter().take(40) {
            prop_assert!(summary.edge_query(e.src, e.dst, range) >= exact.edge_query(e.src, e.dst, range));
        }
    }

    #[test]
    fn baselines_never_underestimate(
        edges in stream_strategy(200),
        range in range_strategy(),
    ) {
        let mut horae = Horae::new(HoraeConfig {
            side: 32,
            fingerprint_bits: 12,
            candidates: 2,
            time_slices: MAX_T.next_power_of_two(),
            granularity_step: 1,
        });
        let mut pgss = Pgss::new(PgssConfig {
            matrices: 2,
            side: 32,
            time_slices: MAX_T.next_power_of_two(),
        });
        let mut exact = ExactTemporalGraph::new();
        for e in &edges {
            horae.insert(e);
            pgss.insert(e);
            exact.insert(e);
        }
        for e in edges.iter().take(30) {
            let truth = exact.edge_query(e.src, e.dst, range);
            prop_assert!(horae.edge_query(e.src, e.dst, range) >= truth);
            prop_assert!(pgss.edge_query(e.src, e.dst, range) >= truth);
        }
    }

    #[test]
    fn higgs_full_range_query_equals_total_weight_per_edge_when_collision_free(
        edges in stream_strategy(150),
    ) {
        // At the paper's default parameters the hash range is ~8M while the
        // vertex universe here is 40, so collisions are (essentially) absent
        // and HIGGS is exact — the Lkml observation of Section VI-B.
        let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
        let mut exact = ExactTemporalGraph::new();
        for e in &edges {
            summary.insert(e);
            exact.insert(e);
        }
        for e in &edges {
            prop_assert_eq!(
                summary.edge_query(e.src, e.dst, TimeRange::all()),
                exact.edge_query(e.src, e.dst, TimeRange::all())
            );
        }
    }

    #[test]
    fn insert_then_delete_is_identity_for_higgs(
        edges in stream_strategy(120),
    ) {
        let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
        for e in &edges {
            summary.insert(e);
        }
        for e in &edges {
            summary.delete(e);
        }
        for e in &edges {
            prop_assert_eq!(summary.edge_query(e.src, e.dst, TimeRange::all()), 0);
        }
    }

    #[test]
    fn random_insert_delete_query_sequences_match_exact(
        edges in stream_strategy(250),
        delete_mask in prop::collection::vec(0u8..4, 1..64),
        range in range_strategy(),
    ) {
        // Drives the full mutate/query surface against the exact store: at
        // paper-default parameters the 40-vertex universe is collision-free,
        // so HIGGS must stay *equal* to the truth through interleaved
        // deletions; an under-sized configuration must never underestimate.
        let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
        let mut tiny = HiggsSummary::new(HiggsConfig {
            d1: 4,
            f1_bits: 10,
            r_bits: 1,
            bucket_entries: 2,
            mapping_addresses: 2,
            overflow_blocks: true,
            shards: 1,
            plan_cache_capacity: 8,
            ingest_queue_cap: None,
            pin_workers: false,
            admission_tick: std::time::Duration::ZERO,
            service_queue_depth: None,
        journal_mode: higgs::JournalMode::Off,
        });
        let mut exact = ExactTemporalGraph::new();
        for e in &edges {
            summary.insert(e);
            tiny.insert(e);
            exact.insert(e);
        }
        // Delete a pseudo-random subset of previously inserted items.
        for (e, m) in edges.iter().zip(delete_mask.iter().cycle()) {
            if *m == 0 {
                summary.delete(e);
                tiny.delete(e);
                exact.delete(e);
            }
        }
        for e in edges.iter().take(40) {
            let truth = exact.edge_query(e.src, e.dst, range);
            prop_assert_eq!(summary.edge_query(e.src, e.dst, range), truth);
            prop_assert!(tiny.edge_query(e.src, e.dst, range) >= truth);
        }
        for v in 0u64..40 {
            for d in [VertexDirection::Out, VertexDirection::In] {
                let truth = exact.vertex_query(v, d, range);
                prop_assert_eq!(summary.vertex_query(v, d, range), truth);
                prop_assert!(tiny.vertex_query(v, d, range) >= truth);
            }
        }
    }

    #[test]
    fn matrix_spill_path_is_exact_per_key(
        ops in prop::collection::vec(
            (0u64..6, 0u64..6, 0u32..8, 0u32..8, 1i64..4),
            1..150,
        ),
    ) {
        // A deliberately tiny aggregated matrix (side 2, one entry per
        // bucket, no MMB) forces most inserts onto the spill path. Spill
        // entries are keyed exactly, and slab entries match on the exact
        // packed key, so per-key edge weights and per-address marginals must
        // equal the model precisely — aggregation loses no weight and
        // misattributes none.
        let mut m = CompressedMatrix::new(2, 2, 1, 1);
        let mut model: HashMap<(u64, u64, u32, u32), i64> = HashMap::new();
        let mut total = 0i64;
        for &(a_s, a_d, f_s, f_d, w) in &ops {
            m.insert_aggregated(a_s, a_d, f_s, f_d, w);
            *model.entry((a_s % 2, a_d % 2, f_s, f_d)).or_insert(0) += w;
            total += w;
        }
        prop_assert_eq!(m.total_weight(), total);
        for (&(a_s, a_d, f_s, f_d), &w) in &model {
            prop_assert_eq!(m.edge_weight(a_s, a_d, f_s, f_d, None) as i64, w);
        }
        // Marginals: src_weight(a, f) must equal the sum over the model of
        // entries with that source address (mod side) and fingerprint.
        for a in 0u64..2 {
            for f in 0u32..8 {
                let truth: i64 = model
                    .iter()
                    .filter(|(&(ms, _, mf, _), _)| ms == a && mf == f)
                    .map(|(_, &w)| w)
                    .sum();
                prop_assert_eq!(m.src_weight(a, f, None) as i64, truth);
                let truth: i64 = model
                    .iter()
                    .filter(|(&(_, md, _, mf), _)| md == a && mf == f)
                    .map(|(_, &w)| w)
                    .sum();
                prop_assert_eq!(m.dst_weight(a, f, None) as i64, truth);
            }
        }
    }

    #[test]
    fn matrix_offset_filters_are_exact_for_inserted_entries(
        ops in prop::collection::vec(
            (0u64..8, 0u64..8, 0u32..6, 0u32..6, 0u32..40, 1i64..4),
            1..120,
        ),
        filter in (0u32..40, 0u32..40),
    ) {
        // Leaf-mode slab semantics: LCG candidate sequences are per-index
        // bijections, so an entry only ever matches queries for its own
        // (address mod side, fingerprint) pair — estimates over the set of
        // *accepted* inserts are exact, offset filters included.
        let mut m = CompressedMatrix::new(4, 1, 2, 2);
        let mut accepted: Vec<(u64, u64, u32, u32, u32, i64)> = Vec::new();
        for &(a_s, a_d, f_s, f_d, off, w) in &ops {
            if m.try_insert(a_s, a_d, f_s, f_d, Some(off), w) {
                accepted.push((a_s % 4, a_d % 4, f_s, f_d, off, w));
            }
        }
        let (lo, hi) = (filter.0.min(filter.1), filter.0.max(filter.1));
        for &(a_s, a_d, f_s, f_d, _, _) in accepted.iter().take(40) {
            let truth: i64 = accepted
                .iter()
                .filter(|&&(s, d, fs, fd, off, _)| {
                    s == a_s && d == a_d && fs == f_s && fd == f_d && off >= lo && off <= hi
                })
                .map(|&(_, _, _, _, _, w)| w)
                .sum();
            prop_assert_eq!(
                m.edge_weight(a_s, a_d, f_s, f_d, Some((lo, hi))) as i64,
                truth
            );
        }
        // Deleting an accepted entry through the filter reverses its weight.
        if let Some(&(a_s, a_d, f_s, f_d, off, w)) = accepted.first() {
            let before = m.edge_weight(a_s, a_d, f_s, f_d, None) as i64;
            prop_assert!(m.try_delete(a_s, a_d, f_s, f_d, Some((off, off)), w));
            prop_assert_eq!(m.edge_weight(a_s, a_d, f_s, f_d, None) as i64, before - w);
        }
    }

    #[test]
    fn query_batch_is_bit_identical_to_per_query_loop(
        edges in stream_strategy(250),
        queries in prop::collection::vec(mixed_query_strategy(), 1..48),
    ) {
        // The plan-sharing batch executor (HIGGS), the default trait loop
        // (exact store), and the per-query `query` path must all agree
        // bit-for-bit on random mixed workloads — batching is a cost
        // optimisation, never a semantic change.
        let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
        let mut tiny = HiggsSummary::new(HiggsConfig {
            d1: 4,
            f1_bits: 10,
            r_bits: 1,
            bucket_entries: 2,
            mapping_addresses: 2,
            overflow_blocks: true,
            shards: 1,
            plan_cache_capacity: 8,
            ingest_queue_cap: None,
            pin_workers: false,
            admission_tick: std::time::Duration::ZERO,
            service_queue_depth: None,
        journal_mode: higgs::JournalMode::Off,
        });
        let mut exact = ExactTemporalGraph::new();
        for e in &edges {
            summary.insert(e);
            tiny.insert(e);
            exact.insert(e);
        }
        let batched = summary.query_batch(&queries);
        let looped: Vec<u64> = queries.iter().map(|q| summary.query(q)).collect();
        prop_assert_eq!(&batched, &looped, "HIGGS batch diverged from loop");

        // A collision-heavy HIGGS must also stay self-consistent.
        prop_assert_eq!(
            tiny.query_batch(&queries),
            queries.iter().map(|q| tiny.query(q)).collect::<Vec<u64>>()
        );

        let exact_batched = exact.query_batch(&queries);
        let exact_looped: Vec<u64> = queries.iter().map(|q| exact.query(q)).collect();
        prop_assert_eq!(&exact_batched, &exact_looped, "exact batch diverged");

        // One-sided error carries over to the batch surface, and the
        // executor plans at most once per distinct range.
        for (est, truth) in batched.iter().zip(&exact_batched) {
            prop_assert!(est >= truth);
        }
        summary.reset_plan_count();
        summary.query_batch(&queries);
        prop_assert!(summary.plans_built() <= 8, "at most one plan per window");
    }

    #[test]
    fn exact_store_is_additive_over_disjoint_ranges(
        edges in stream_strategy(200),
        split in 1u64..MAX_T,
    ) {
        let exact = ExactTemporalGraph::from_edges(&edges);
        for e in edges.iter().take(30) {
            let left = exact.edge_query(e.src, e.dst, TimeRange::new(0, split - 1));
            let right = exact.edge_query(e.src, e.dst, TimeRange::new(split, MAX_T));
            let whole = exact.edge_query(e.src, e.dst, TimeRange::new(0, MAX_T));
            prop_assert_eq!(left + right, whole);
        }
    }
}
