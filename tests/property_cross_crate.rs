//! Property-based tests spanning crates: randomised streams and query ranges
//! drive the invariants the paper proves — one-sided error for every summary
//! (Section V-D), exact additivity of disjoint ranges on the exact store, and
//! insert/delete inverses.

use higgs::{HiggsConfig, HiggsSummary};
use higgs_baselines::{Horae, HoraeConfig, Pgss, PgssConfig};
use higgs_common::{ExactTemporalGraph, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection};
use proptest::prelude::*;

const MAX_T: u64 = 2_000;

fn edge_strategy() -> impl Strategy<Value = StreamEdge> {
    (0u64..40, 0u64..40, 1u64..5, 0u64..MAX_T)
        .prop_map(|(s, d, w, t)| StreamEdge::new(s, d, w, t))
}

fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<StreamEdge>> {
    prop::collection::vec(edge_strategy(), 1..max_len).prop_map(|mut edges| {
        edges.sort_by_key(|e| e.timestamp);
        edges
    })
}

fn range_strategy() -> impl Strategy<Value = TimeRange> {
    (0u64..MAX_T, 0u64..MAX_T).prop_map(|(a, b)| TimeRange::new(a.min(b), a.max(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn higgs_never_underestimates_edge_or_vertex_queries(
        edges in stream_strategy(300),
        range in range_strategy(),
    ) {
        let mut summary = HiggsSummary::new(HiggsConfig {
            d1: 4,
            f1_bits: 10,
            r_bits: 1,
            bucket_entries: 2,
            mapping_addresses: 2,
            overflow_blocks: true,
        });
        let mut exact = ExactTemporalGraph::new();
        for e in &edges {
            summary.insert(e);
            exact.insert(e);
        }
        for v in 0u64..40 {
            for d in [VertexDirection::Out, VertexDirection::In] {
                prop_assert!(summary.vertex_query(v, d, range) >= exact.vertex_query(v, d, range));
            }
        }
        for e in edges.iter().take(40) {
            prop_assert!(summary.edge_query(e.src, e.dst, range) >= exact.edge_query(e.src, e.dst, range));
        }
    }

    #[test]
    fn baselines_never_underestimate(
        edges in stream_strategy(200),
        range in range_strategy(),
    ) {
        let mut horae = Horae::new(HoraeConfig {
            side: 32,
            fingerprint_bits: 12,
            candidates: 2,
            time_slices: MAX_T.next_power_of_two(),
            granularity_step: 1,
        });
        let mut pgss = Pgss::new(PgssConfig {
            matrices: 2,
            side: 32,
            time_slices: MAX_T.next_power_of_two(),
        });
        let mut exact = ExactTemporalGraph::new();
        for e in &edges {
            horae.insert(e);
            pgss.insert(e);
            exact.insert(e);
        }
        for e in edges.iter().take(30) {
            let truth = exact.edge_query(e.src, e.dst, range);
            prop_assert!(horae.edge_query(e.src, e.dst, range) >= truth);
            prop_assert!(pgss.edge_query(e.src, e.dst, range) >= truth);
        }
    }

    #[test]
    fn higgs_full_range_query_equals_total_weight_per_edge_when_collision_free(
        edges in stream_strategy(150),
    ) {
        // At the paper's default parameters the hash range is ~8M while the
        // vertex universe here is 40, so collisions are (essentially) absent
        // and HIGGS is exact — the Lkml observation of Section VI-B.
        let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
        let mut exact = ExactTemporalGraph::new();
        for e in &edges {
            summary.insert(e);
            exact.insert(e);
        }
        for e in &edges {
            prop_assert_eq!(
                summary.edge_query(e.src, e.dst, TimeRange::all()),
                exact.edge_query(e.src, e.dst, TimeRange::all())
            );
        }
    }

    #[test]
    fn insert_then_delete_is_identity_for_higgs(
        edges in stream_strategy(120),
    ) {
        let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
        for e in &edges {
            summary.insert(e);
        }
        for e in &edges {
            summary.delete(e);
        }
        for e in &edges {
            prop_assert_eq!(summary.edge_query(e.src, e.dst, TimeRange::all()), 0);
        }
    }

    #[test]
    fn exact_store_is_additive_over_disjoint_ranges(
        edges in stream_strategy(200),
        split in 1u64..MAX_T,
    ) {
        let exact = ExactTemporalGraph::from_edges(&edges);
        for e in edges.iter().take(30) {
            let left = exact.edge_query(e.src, e.dst, TimeRange::new(0, split - 1));
            let right = exact.edge_query(e.src, e.dst, TimeRange::new(split, MAX_T));
            let whole = exact.edge_query(e.src, e.dst, TimeRange::new(0, MAX_T));
            prop_assert_eq!(left + right, whole);
        }
    }
}
