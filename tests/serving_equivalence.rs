//! Cross-crate tests of the serving front-end: a property test that N
//! concurrent clients submitting through a `HiggsService` receive results
//! bit-identical to a direct `query_batch` on an unserved `ShardedHiggs`
//! (at 1/2/4 shards), the acceptance-bound coalescing test (128 simulated
//! clients sharing 16 distinct windows build at most 16 plans on a warm
//! tick), and a shutdown-while-in-flight stress test (every ticket
//! resolves, no hang, and the writer threads join).

use higgs::shard::live_writer_threads;
use higgs::{HiggsConfig, HiggsService, ServiceError, ShardedHiggs, Ticket};
use higgs_common::{
    Query, QueryOptions, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection,
};
use proptest::prelude::*;
use std::time::{Duration, Instant};

const MAX_T: u64 = 2_000;

fn edge_strategy() -> impl Strategy<Value = StreamEdge> {
    (0u64..40, 0u64..40, 1u64..5, 0u64..MAX_T).prop_map(|(s, d, w, t)| StreamEdge::new(s, d, w, t))
}

fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<StreamEdge>> {
    prop::collection::vec(edge_strategy(), 1..max_len).prop_map(|mut edges| {
        edges.sort_by_key(|e| e.timestamp);
        edges
    })
}

/// Random typed queries of all four kinds over the 40-vertex universe,
/// drawn from a small set of windows so concurrent clients genuinely share
/// plans.
fn mixed_query_strategy() -> impl Strategy<Value = Query> {
    (0u8..4, 0u64..40, 0u64..40, 0u64..40, 0u64..8).prop_map(|(kind, a, b, c, window)| {
        let start = window * (MAX_T / 8);
        let range = TimeRange::new(start, start + MAX_T / 4);
        match kind {
            0 => Query::edge(a, b, range),
            1 => Query::vertex(
                a,
                if b % 2 == 0 {
                    VertexDirection::Out
                } else {
                    VertexDirection::In
                },
                range,
            ),
            2 => Query::path(vec![a, b, c, (a + b) % 40, (b + c) % 40], range),
            _ => Query::subgraph(vec![(a, b), (b, c), (c, a), (a, c)], range),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn concurrent_clients_match_the_unserved_service(
        edges in stream_strategy(200),
        queries in prop::collection::vec(mixed_query_strategy(), 4..32),
    ) {
        // Split the query load over 4 concurrent clients per shard layout;
        // whatever ticks/classes the admission loop forms, every client's
        // slice must come back bit-identical to an unserved ShardedHiggs
        // evaluating the same batch directly.
        for shards in [1usize, 2, 4] {
            let config = HiggsConfig::builder()
                .shards(shards)
                .admission_tick(Duration::from_micros(200))
                .build()
                .expect("valid shard count");
            let service = HiggsService::new(config);
            let ingest = service.client();
            ingest.insert_all(&edges).expect("live service");

            let mut direct = ShardedHiggs::new(
                HiggsConfig::builder().shards(shards).build().expect("valid"),
            );
            direct.insert_all(&edges);
            let expected = direct.query_batch(&queries);

            let slices: Vec<&[Query]> = queries.chunks(queries.len().div_ceil(4)).collect();
            let served: Vec<Vec<u64>> = std::thread::scope(|scope| {
                let workers: Vec<_> = slices
                    .iter()
                    .map(|slice| {
                        let client = service.client();
                        scope.spawn(move || {
                            client.query_batch(slice).expect("live service")
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().expect("client thread panicked"))
                    .collect()
            });
            let flat: Vec<u64> = served.into_iter().flatten().collect();
            prop_assert_eq!(
                &flat, &expected,
                "{} shards: served results diverged from the unserved service",
                shards
            );
        }
    }
}

#[test]
fn warm_tick_with_128_clients_and_16_windows_builds_at_most_16_plans() {
    // The acceptance bound for the serving layer: 128 simulated clients
    // sharing 16 distinct windows must coalesce into at most 16 plans total
    // across all shards in a warm tick — one per distinct window at worst,
    // zero when every shard's plan cache is warm.
    let config = HiggsConfig::builder()
        .shards(4)
        .admission_tick(Duration::from_millis(2))
        .build()
        .expect("valid configuration");
    let service = HiggsService::new(config);
    let ingest = service.client();
    let edges: Vec<StreamEdge> = (0..5_000u64)
        .map(|i| StreamEdge::new(i % 100, (i * 7) % 100, 1 + i % 3, i / 4))
        .collect();
    ingest.insert_all(&edges).expect("live service");
    ingest.flush();

    let windows: Vec<TimeRange> = (0..16u64)
        .map(|w| TimeRange::new(w * 60, w * 60 + 500))
        .collect();
    // Warm every (shard, window) plan the tick will touch — queries route by
    // source, so the warm-up must cover every source the clients use.
    let warmup: Vec<Query> = windows
        .iter()
        .flat_map(|&w| (0..7u64).map(move |src| Query::edge(src, 7, w)))
        .collect();
    ingest.query_batch(&warmup).expect("warm-up batch");
    service.reset_plan_count();

    let served: Vec<u64> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..128)
            .map(|i| {
                let client = service.client();
                let window = windows[i % windows.len()];
                scope.spawn(move || {
                    client
                        .query(&Query::edge((i % 7) as u64, 7, window))
                        .expect("live service")
                })
            })
            .collect();
        clients
            .into_iter()
            .map(|c| c.join().expect("client thread panicked"))
            .collect()
    });
    assert_eq!(served.len(), 128);
    let plans = service.plans_built();
    assert!(
        plans <= 16,
        "warm tick built {plans} plans for 128 clients over 16 shared windows \
         (bound: at most one per distinct window)"
    );
}

#[test]
fn shutdown_while_in_flight_resolves_every_ticket_and_joins_writers() {
    let before = live_writer_threads();
    let service = HiggsService::new(
        HiggsConfig::builder()
            .shards(2)
            .admission_tick(Duration::from_micros(500))
            .build()
            .expect("valid configuration"),
    );
    let ingest = service.client();
    let edges: Vec<StreamEdge> = (0..4_000u64)
        .map(|i| StreamEdge::new(i % 120, (i * 17) % 120, 1 + i % 3, i / 2))
        .collect();
    ingest.insert_all(&edges).expect("live service");

    // 8 client threads fire submissions while the main thread drops the
    // service out from under them. Every ticket must resolve — a real
    // result for submissions admitted before the shutdown marker, the
    // typed shutdown error after — and no wait may hang.
    let resolved: Vec<Result<u64, ServiceError>> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..8)
            .map(|c| {
                let client = service.client();
                scope.spawn(move || {
                    let mut outcomes = Vec::new();
                    for k in 0..32u64 {
                        let tickets: Vec<Ticket> = (0..4)
                            .map(|j| {
                                client.submit(Query::edge(
                                    (c * 13 + k + j) % 120,
                                    ((c * 13 + k + j) * 17) % 120,
                                    TimeRange::new(0, 900),
                                ))
                            })
                            .collect();
                        outcomes.extend(tickets.into_iter().map(Ticket::wait));
                    }
                    outcomes
                })
            })
            .collect();
        // Let some traffic through, then tear the service down mid-flight.
        std::thread::sleep(Duration::from_millis(2));
        drop(service);
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("client thread panicked"))
            .collect()
    });
    assert_eq!(resolved.len(), 8 * 32 * 4, "every ticket must resolve");
    for outcome in &resolved {
        if let Err(e) = outcome {
            assert_eq!(*e, ServiceError::Shutdown, "only shutdown may fail tickets");
        }
    }

    // Teardown must join the serving threads and then the shard writers.
    // Other tests in this binary spawn services of their own, so poll until
    // the global census returns to this test's baseline.
    let deadline = Instant::now() + Duration::from_secs(10);
    while live_writer_threads() != before && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        live_writer_threads(),
        before,
        "service teardown must return the writer-thread census to its baseline"
    );

    // Orphaned clients keep failing fast with typed errors.
    assert_eq!(
        ingest.query(&Query::edge(1, 2, TimeRange::all())),
        Err(ServiceError::Shutdown)
    );
    assert!(ingest.insert(&StreamEdge::new(1, 2, 1, 1)).is_err());
}

#[test]
fn options_are_honoured_across_concurrent_classes() {
    // Mixed-priority concurrent traffic: interactive (relaxed), normal, and
    // bulk clients all get correct answers on a settled summary, and an
    // already-expired deadline is reported as such, never evaluated.
    let service = HiggsService::new(
        HiggsConfig::builder()
            .shards(2)
            .admission_tick(Duration::from_micros(500))
            .build()
            .expect("valid configuration"),
    );
    let ingest = service.client();
    let edges: Vec<StreamEdge> = (0..2_000u64)
        .map(|i| StreamEdge::new(i % 60, (i * 11) % 60, 1 + i % 2, i))
        .collect();
    ingest.insert_all(&edges).expect("live service");
    ingest.flush();

    let query = Query::edge(1, 11, TimeRange::all());
    let expected = service.summary().query(&query);
    let outcomes: Vec<Result<u64, ServiceError>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..24)
            .map(|i| {
                let client = service.client();
                let query = query.clone();
                scope.spawn(move || {
                    let options = match i % 4 {
                        0 => QueryOptions::interactive(),
                        1 => QueryOptions::bulk(),
                        2 => QueryOptions::new().deadline(Duration::ZERO),
                        _ => QueryOptions::default(),
                    };
                    client.submit_with(query, options).wait()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread panicked"))
            .collect()
    });
    for (i, outcome) in outcomes.iter().enumerate() {
        match i % 4 {
            2 => assert_eq!(
                *outcome,
                Err(ServiceError::DeadlineExceeded),
                "an already-expired deadline must never be evaluated"
            ),
            _ => assert_eq!(*outcome, Ok(expected), "client {i} diverged"),
        }
    }
}
