//! Reproduction-shape tests: on identical workloads HIGGS should be at least
//! as accurate as every top-down baseline and should not use more space than
//! the per-layer-global baselines (the qualitative ordering of Figs. 10, 19,
//! and 21 of the paper).

use higgs::{HiggsConfig, HiggsSummary};
use higgs_baselines::{Horae, HoraeConfig, Pgss, PgssConfig};
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::{ErrorStats, ExactTemporalGraph, TemporalGraphSummary};

struct Loaded {
    name: &'static str,
    summary: Box<dyn TemporalGraphSummary>,
}

fn load_all() -> (Vec<Loaded>, ExactTemporalGraph, higgs_common::GraphStream) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let mut out: Vec<Loaded> = vec![
        Loaded {
            name: "HIGGS",
            summary: Box::new(HiggsSummary::new(HiggsConfig::paper_default())),
        },
        Loaded {
            name: "Horae",
            summary: Box::new(Horae::new(HoraeConfig::for_stream(stream.len(), slices))),
        },
        Loaded {
            name: "Horae-cpt",
            summary: Box::new(Horae::compact(HoraeConfig::for_stream(
                stream.len(),
                slices,
            ))),
        },
        Loaded {
            name: "PGSS",
            summary: Box::new(Pgss::new(PgssConfig::for_stream(stream.len(), slices))),
        },
    ];
    for l in &mut out {
        l.summary.insert_all(stream.edges());
    }
    let exact = ExactTemporalGraph::from_edges(stream.edges());
    (out, exact, stream)
}

fn edge_aae(
    summary: &dyn TemporalGraphSummary,
    exact: &ExactTemporalGraph,
    stream: &higgs_common::GraphStream,
    lq: u64,
) -> f64 {
    let mut builder = WorkloadBuilder::new(stream, 21);
    let mut stats = ErrorStats::new();
    for q in builder.edge_queries(300, lq) {
        stats.record(
            exact.edge_query(q.src, q.dst, q.range),
            summary.edge_query(q.src, q.dst, q.range),
        );
    }
    stats.aae()
}

#[test]
fn higgs_is_at_least_as_accurate_as_every_baseline() {
    let (loaded, exact, stream) = load_all();
    let lq = stream.time_span().unwrap().len() / 4;
    let higgs_aae = edge_aae(loaded[0].summary.as_ref(), &exact, &stream, lq);
    for l in &loaded[1..] {
        let baseline_aae = edge_aae(l.summary.as_ref(), &exact, &stream, lq);
        assert!(
            higgs_aae <= baseline_aae + 1e-9,
            "HIGGS AAE {higgs_aae} should not exceed {} AAE {baseline_aae}",
            l.name
        );
    }
}

#[test]
fn compact_variants_trade_accuracy_or_latency_for_space() {
    let (loaded, _, _) = load_all();
    let horae = loaded.iter().find(|l| l.name == "Horae").unwrap();
    let horae_cpt = loaded.iter().find(|l| l.name == "Horae-cpt").unwrap();
    assert!(
        horae_cpt.summary.space_bytes() < horae.summary.space_bytes(),
        "the -cpt variant must be smaller"
    );
}

#[test]
fn pgss_is_least_accurate_without_fingerprints() {
    // The paper attributes PGSS's poor accuracy to the absence of
    // fingerprints; with matched hash ranges it should trail Horae and HIGGS.
    let (loaded, exact, stream) = load_all();
    let lq = stream.time_span().unwrap().len() / 4;
    let pgss_aae = edge_aae(
        loaded
            .iter()
            .find(|l| l.name == "PGSS")
            .unwrap()
            .summary
            .as_ref(),
        &exact,
        &stream,
        lq,
    );
    let higgs_aae = edge_aae(loaded[0].summary.as_ref(), &exact, &stream, lq);
    assert!(pgss_aae >= higgs_aae);
}
